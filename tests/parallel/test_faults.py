"""Fault injection, detection, and recovery (chaos tests).

Property under test: a run under any seeded :class:`FaultPlan` either
returns a valid, balanced partition or raises a *typed*
:class:`~repro.errors.ReproError` — never a silent wrong answer — and
everything (fault events, recovery path, final cut) is deterministic
per ``(seed, plan)``.
"""

import warnings

import numpy as np
import pytest

from repro.core.config import ScalaPartConfig
from repro.core.parallel import RetryPolicy, run_parallel
from repro.errors import (
    BudgetExceededError,
    CommError,
    CommWarning,
    DeadlockError,
    PartitionError,
    RankFailure,
    ReproError,
)
from repro.graph import generators as gen
from repro.parallel import (
    FaultPlan,
    KillRank,
    MessageFault,
    ZERO_COST,
    corrupt_payload,
    run_spmd,
    trace_records,
)

FAST = ScalaPartConfig(coarsest_iters=80, smooth_iters=6)


def run0(fn, p, *args, **kw):
    return run_spmd(fn, p, *args, machine=ZERO_COST, **kw)


def ring(comm):
    """Each rank sends to its successor, then allreduces the sum."""
    dst = (comm.rank + 1) % comm.size
    src = (comm.rank - 1) % comm.size
    yield from comm.send(np.full(4, comm.rank, dtype=np.int64), dest=dst, tag=7)
    got = yield from comm.recv(source=src, tag=7)
    total = yield from comm.allreduce(int(got[0]), op="sum")
    return total


# ----------------------------------------------------------------------
# the plan itself
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=42, kill_rate=0.1, drop_rate=0.1)
        kills = [plan.kill_now(r, i, 0) for r in range(4) for i in range(50)]
        msgs = [plan.message_fault(i) for i in range(200)]
        again = FaultPlan(seed=42, kill_rate=0.1, drop_rate=0.1)
        assert kills == [again.kill_now(r, i, 0)
                         for r in range(4) for i in range(50)]
        assert msgs == [again.message_fault(i) for i in range(200)]

    def test_attempt_epoch_redraws_random_faults(self):
        plan = FaultPlan(seed=42, drop_rate=0.2)
        first = [plan.message_fault(i) for i in range(100)]
        second = [plan.for_attempt(1).message_fault(i) for i in range(100)]
        assert first != second

    def test_scheduled_faults_are_transient_by_default(self):
        plan = FaultPlan(seed=0, kills=(KillRank(rank=1, at_op=3),))
        assert plan.kill_now(1, 3, 0)
        assert not plan.for_attempt(1).kill_now(1, 3, 0)
        hard = FaultPlan(seed=0, kills=(KillRank(rank=1, at_op=3,
                                                 attempts=None),))
        assert hard.for_attempt(5).kill_now(1, 3, 0)

    def test_max_kills_caps_random_kills(self):
        plan = FaultPlan(seed=1, kill_rate=1.0, max_kills=1)
        assert plan.kill_now(0, 0, killed_so_far=0)
        assert not plan.kill_now(0, 0, killed_so_far=1)

    def test_bad_rate_and_kind_raise(self):
        with pytest.raises(CommError):
            FaultPlan(seed=0, drop_rate=1.5)
        with pytest.raises(CommError):
            MessageFault("teleport", 0)

    def test_describe_mentions_active_knobs(self):
        text = FaultPlan(seed=9, drop_rate=0.25,
                         kills=(KillRank(0),)).describe()
        assert "drop_rate=0.25" in text and "kills=1" in text
        assert not FaultPlan(seed=9).is_active


class TestCorruptPayload:
    def test_int_array_bit_flip(self):
        arr = np.arange(8)
        out, desc = corrupt_payload(arr, 3)
        assert desc and (out != arr).sum() == 1
        assert np.array_equal(arr, np.arange(8))  # original untouched

    def test_readonly_flag_preserved(self):
        arr = np.arange(4.0)
        arr.flags.writeable = False
        out, desc = corrupt_payload(arr, 1)
        assert desc and not out.flags.writeable

    def test_scalars_and_containers(self):
        assert corrupt_payload(True, 0)[0] is False
        assert corrupt_payload(7, 0)[0] == 6
        assert corrupt_payload(1.5, 0)[0] == 2.5
        out, desc = corrupt_payload({"n": 4, "s": "x"}, 0)
        assert out["n"] == 5 and "key 'n'" in desc

    def test_uncorruptible_returns_empty_desc(self):
        assert corrupt_payload("just a string", 0) == ("just a string", "")
        assert corrupt_payload(np.array([], dtype=np.int64), 0)[1] == ""


# ----------------------------------------------------------------------
# injection + detection in the engine
# ----------------------------------------------------------------------

class TestEngineInjection:
    def test_inert_plan_matches_clean_run(self):
        clean = run0(ring, 4, seed=3)
        faulted = run0(ring, 4, seed=3, faults=FaultPlan(seed=1))
        assert faulted.values == clean.values
        assert faulted.faults == []

    def test_kill_raises_rank_failure(self):
        plan = FaultPlan(seed=0, kills=(KillRank(rank=1, at_op=1),))
        with pytest.raises(RankFailure) as ei:
            run0(ring, 4, faults=plan)
        assert ei.value.dead_rank == 1
        assert ei.value.sim_time >= 0.0

    def test_drop_becomes_deadlock_with_context(self):
        plan = FaultPlan(seed=0, messages=(MessageFault("drop", 0),))
        with pytest.raises(DeadlockError) as ei:
            run0(ring, 3, faults=plan)
        parked = ei.value.parked
        assert parked and all(
            set(p) >= {"rank", "kind", "peer", "tag", "phase"}
            for p in parked
        )
        assert any(p["kind"] == "recv" and p["tag"] == 7 for p in parked)

    def test_duplicate_delivers_twice(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.send(5, dest=1, tag=2)
                return 0
            a = yield from comm.recv(source=0, tag=2)
            b = yield from comm.recv(source=0, tag=2)
            return (a, b)

        plan = FaultPlan(seed=0, messages=(MessageFault("duplicate", 0),))
        res = run0(prog, 2, faults=plan)
        assert res.values[1] == (5, 5)

    def test_delay_completes_and_is_recorded(self):
        plan = FaultPlan(seed=0,
                         messages=(MessageFault("delay", 0, delay=1e-3),))
        res = run0(ring, 4, seed=3, faults=plan)
        assert res.values == run0(ring, 4, seed=3).values
        kinds = [ev.kind for ev in res.faults]
        assert kinds == ["delay"]
        recs = [r for r in trace_records(res) if r["record"] == "fault"]
        assert recs and recs[0]["kind"] == "delay"

    def test_corrupt_without_sanitizer_changes_payload(self):
        plan = FaultPlan(seed=0, messages=(MessageFault("corrupt", 0),))
        clean = run0(ring, 3, faults=None, sanitize=False)
        res = run0(ring, 3, faults=plan, sanitize=False)
        assert res.values != clean.values  # silent corruption flowed through

    def test_corrupt_with_sanitizer_raises(self):
        plan = FaultPlan(seed=0, messages=(MessageFault("corrupt", 0),))
        with pytest.raises(CommError, match="checksum|sanitizer|corrupt"):
            run0(ring, 3, faults=plan, sanitize=True)

    def test_random_rates_fire_deterministically(self):
        plan = FaultPlan(seed=11, drop_rate=0.5)

        def outcome():
            try:
                res = run0(ring, 4, seed=3, faults=plan)
                return ("ok", res.values,
                        [ev.to_dict() for ev in res.faults])
            except ReproError as exc:
                return ("err", type(exc).__name__, str(exc))

        assert outcome() == outcome()

    def test_undelivered_warning_lists_pending_messages(self):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.send(np.zeros(4), dest=1, tag=9)
            yield from comm.barrier()
            return None

        with pytest.warns(CommWarning, match=r"rank 0 -> rank 1.*tag=9"):
            run0(prog, 2)


class TestBudgets:
    def test_max_steps(self):
        with pytest.raises(BudgetExceededError) as ei:
            run0(ring, 4, max_steps=3)
        assert ei.value.budget == "steps" and ei.value.limit == 3

    def test_max_sim_seconds(self):
        def chatty(comm):
            for _ in range(100):
                yield from comm.barrier()
            return None

        with pytest.raises(BudgetExceededError) as ei:
            run_spmd(chatty, 4, max_sim_seconds=1e-6)
        assert ei.value.budget == "sim_seconds"

    def test_generous_budgets_do_not_trigger(self):
        res = run0(ring, 4, seed=3, max_steps=10_000, max_sim_seconds=10.0)
        assert res.values == run0(ring, 4, seed=3).values


# ----------------------------------------------------------------------
# recovery ladder
# ----------------------------------------------------------------------

class TestRecoveryLadder:
    def test_transient_kill_recovers_on_retry(self, small_delaunay):
        g, _ = small_delaunay
        plan = FaultPlan(seed=3, kills=(KillRank(rank=1, at_op=10),))
        with pytest.raises(RankFailure):
            run_parallel("ScalaPart", g, 4, config=FAST, seed=7, faults=plan)
        out = run_parallel("ScalaPart", g, 4, config=FAST, seed=7,
                           faults=plan, retry=RetryPolicy())
        rec = out.extras["recovery"]
        assert rec["recovered"] and rec["final_nranks"] == 4
        assert [a["step"] for a in rec["attempts"]] == ["primary", "retry"]
        out.bisection.validate(0.15)

    def test_hard_kill_shrinks_rank_count(self, small_delaunay):
        g, _ = small_delaunay
        plan = FaultPlan(seed=3, kills=(KillRank(rank=3, at_op=5,
                                                 attempts=None),))
        out = run_parallel("ScalaPart", g, 4, config=FAST, seed=7,
                           faults=plan, retry=RetryPolicy())
        rec = out.extras["recovery"]
        # rank 3 no longer exists on 2 ranks, so the shrunk run is clean
        assert rec["final_nranks"] == 2
        assert rec["attempts"][-1]["step"] == "shrink"
        out.bisection.validate(0.15)

    def test_kill_rank0_falls_back_to_sequential(self, small_delaunay):
        g, _ = small_delaunay
        plan = FaultPlan(seed=3, kills=(KillRank(rank=0, at_op=5,
                                                 attempts=None),))
        out = run_parallel("ScalaPart", g, 4, config=FAST, seed=7,
                           faults=plan, retry=RetryPolicy())
        rec = out.extras["recovery"]
        assert rec["attempts"][-1]["mode"] == "sequential"
        assert rec["final_method"] == "ScalaPart"
        out.bisection.validate(0.15)

    def test_rcb_falls_back_down_registry_ladder(self, small_delaunay):
        g, coords = small_delaunay
        plan = FaultPlan(seed=5, kills=(KillRank(rank=0, at_op=2,
                                                 attempts=None),))
        out = run_parallel("RCB", g, 4, coords=coords, seed=9, faults=plan,
                           retry=RetryPolicy(retries=0))
        methods = [a["method"] for a in out.extras["recovery"]["attempts"]]
        assert methods[0] == "RCB" and "ScalaPart" in methods
        out.bisection.validate(0.15)

    def test_exhaustion_raises_typed_error(self, small_delaunay):
        g, _ = small_delaunay
        plan = FaultPlan(seed=3, kills=(KillRank(rank=0, at_op=5,
                                                 attempts=None),))
        with pytest.raises(PartitionError, match="recovery exhausted"):
            run_parallel("ScalaPart", g, 4, config=FAST, seed=7, faults=plan,
                         retry=RetryPolicy(retries=0, shrink=False,
                                           fallback=False))

    def test_recovery_is_deterministic(self, small_delaunay):
        g, _ = small_delaunay
        plan = FaultPlan(seed=3, kills=(KillRank(rank=1, at_op=10),),
                         kill_rate=1e-3)

        def once():
            out = run_parallel("ScalaPart", g, 4, config=FAST, seed=7,
                               faults=plan, retry=RetryPolicy())
            rec = out.extras["recovery"]
            return (int(out.bisection.cut_size),
                    [(a["step"], a["status"], a["nranks"])
                     for a in rec["attempts"]])

        assert once() == once()

    def test_no_retry_keeps_plain_behaviour(self, small_delaunay):
        g, _ = small_delaunay
        plain = run_parallel("ScalaPart", g, 4, config=FAST, seed=7)
        again = run_parallel("ScalaPart", g, 4, config=FAST, seed=7,
                             faults=FaultPlan(seed=1))
        assert plain.bisection.cut_size == again.bisection.cut_size
        assert "recovery" not in again.extras


# ----------------------------------------------------------------------
# the chaos property: valid cut or typed error, never silent garbage
# ----------------------------------------------------------------------

class TestChaosProperty:
    @pytest.mark.parametrize("method", ["ScalaPart", "ParMetis-like"])
    @pytest.mark.parametrize("plan_seed", [1, 2, 3])
    def test_valid_partition_or_typed_error(self, small_delaunay, method,
                                            plan_seed):
        g, _ = small_delaunay
        plan = FaultPlan(seed=plan_seed,
                         kills=(KillRank(rank=plan_seed % 4, at_op=6),),
                         kill_rate=1e-3)
        kwargs = {"config": FAST} if method == "ScalaPart" else {}

        def once():
            with warnings.catch_warnings():
                warnings.simplefilter("error", CommWarning)
                try:
                    out = run_parallel(method, g, 4, seed=5, faults=plan,
                                       retry=RetryPolicy(), **kwargs)
                except ReproError as exc:
                    return ("error", type(exc).__name__, str(exc))
            side = out.bisection.side
            assert set(np.unique(side)) <= {0, 1}
            out.bisection.validate(0.15)
            return ("ok", int(out.bisection.cut_size),
                    out.extras["recovery"]["final_method"])

        first = once()
        assert first == once()  # same seed + plan => same outcome
