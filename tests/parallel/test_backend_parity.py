"""Differential tests: ``backend="procs"`` must match ``backend="sim"``.

The procs executor runs the *same* registry-driven rank programs on
real worker processes.  Because both backends derive per-rank RNG
streams the same way and route the same ``_Op`` requests, every
distributed method must produce a bit-identical partition vector, the
same cut, and the same communication ledger (counts and words — not
timings) on both.  Any divergence means the two executors disagree
about the semantics of an operation, which is exactly the bug class
this matrix exists to catch.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import ScalaPartConfig
from repro.core.methods import distributed_methods
from repro.core.parallel import run_parallel
from repro.graph.generators import grid2d, random_delaunay
from repro.parallel import procs_available

from tests.conftest import ledger_fingerprint, run_both_backends

pytestmark = pytest.mark.skipif(
    not procs_available(), reason="procs backend unavailable (no fork)"
)

SEED = 11
#: small so each case stays fast — ScalaPart does a full V-cycle per run
CFG = ScalaPartConfig(coarsest_iters=40, smooth_iters=4)

METHODS = distributed_methods()
GRAPHS = [
    ("delaunay400-p2", lambda: random_delaunay(400, seed=3), 2),
    ("delaunay400-p4", lambda: random_delaunay(400, seed=3), 4),
    ("grid20x20-p4", lambda: grid2d(20, 20), 4),
]


def _kwargs(spec):
    return {"config": CFG} if spec.accepts_config else {}


class TestBackendParity:
    @pytest.mark.parametrize("spec", METHODS, ids=[s.cli_name for s in METHODS])
    @pytest.mark.parametrize(
        "gname,gfn,p", GRAPHS, ids=[g[0] for g in GRAPHS]
    )
    def test_methods_bit_identical_across_backends(self, spec, gname, gfn, p):
        mesh = gfn()
        sim, procs = run_both_backends(
            spec, mesh.graph, p, seed=SEED, coords=mesh.coords, **_kwargs(spec)
        )

        # partition vector and cut: byte-identical
        assert sim.bisection.side.tobytes() == procs.bisection.side.tobytes()
        assert sim.cut_size == procs.cut_size

        ts, tp = sim.extras["trace"], procs.extras["trace"]
        assert ts.backend == "sim" and tp.backend == "procs"

        # same collective sequence implies the same op counts and the
        # same words moved, phase by phase (timings are not comparable)
        assert ts.messages == tp.messages
        assert ts.collectives == tp.collectives
        assert ts.words_sent == tp.words_sent
        assert json.dumps(ledger_fingerprint(ts.comm_stats)) == json.dumps(
            ledger_fingerprint(tp.comm_stats)
        )

        # the procs run really fanned out to one OS process per rank
        assert len(set(tp.pids)) == p

    def test_phase_labels_agree(self):
        """Both backends see the same ``set_phase`` stream.  Sim only
        materialises a phase once a modelled cost is charged under it,
        while procs measures real wall time in *every* phase, so sim's
        labels are a subset of procs' labels (values differ: model vs
        wall)."""
        mesh = random_delaunay(400, seed=3)
        sim, procs = run_both_backends(
            "ScalaPart", mesh.graph, 4, seed=SEED, coords=mesh.coords,
            config=CFG,
        )
        ts, tp = sim.extras["trace"], procs.extras["trace"]
        assert set(ts.phases) <= set(tp.phases)
        assert "embed" in {p.split("/")[0] for p in tp.phases}


class TestProcsPropertyAndDeterminism:
    @pytest.mark.parametrize("spec", METHODS, ids=[s.cli_name for s in METHODS])
    @pytest.mark.parametrize("p", [2, 4])
    def test_valid_balanced_cut_and_same_seed_rerun(self, spec, p):
        """Property: on real processes every registered distributed
        method yields a valid partition within its balance bound, and a
        same-seed rerun is bit-identical."""
        mesh = random_delaunay(300, seed=5)

        def run():
            return run_parallel(spec, mesh.graph, p, coords=mesh.coords,
                                seed=SEED, backend="procs", **_kwargs(spec))

        a = run()
        bound = spec.balance_bound if spec.balance_bound is not None else 0.15
        a.validate(bound)
        side = np.asarray(a.bisection.side)
        assert set(np.unique(side)) <= {0, 1}
        assert 0 < int(side.sum()) < side.size  # both sides non-empty

        b = run()
        assert a.bisection.side.tobytes() == b.bisection.side.tobytes()
        assert a.cut_size == b.cut_size
        assert json.dumps(
            ledger_fingerprint(a.extras["trace"].comm_stats)
        ) == json.dumps(ledger_fingerprint(b.extras["trace"].comm_stats))
