"""Unit tests for process-grid topology helpers."""

import pytest

from repro.errors import ConfigError
from repro.parallel import ProcessGrid, grid_dims


class TestGridDims:
    @pytest.mark.parametrize(
        "p,expect",
        [(1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (8, (2, 4)), (16, (4, 4)),
         (64, (8, 8)), (1024, (32, 32)), (12, (3, 4)), (7, (1, 7))],
    )
    def test_factoring(self, p, expect):
        assert grid_dims(p) == expect

    def test_invalid(self):
        with pytest.raises(ConfigError):
            grid_dims(0)


class TestProcessGrid:
    def test_rank_pos_roundtrip(self):
        g = ProcessGrid(3, 4)
        for r in range(g.size):
            assert g.rank_of(*g.pos_of(r)) == r

    def test_square_ish(self):
        assert ProcessGrid.square_ish(16) == ProcessGrid(4, 4)

    def test_neighbors4_interior_and_corner(self):
        g = ProcessGrid(3, 3)
        assert sorted(g.neighbors4(4)) == [1, 3, 5, 7]
        assert sorted(g.neighbors4(0)) == [1, 3]

    def test_neighbors8(self):
        g = ProcessGrid(3, 3)
        assert len(g.neighbors8(4)) == 8
        assert len(g.neighbors8(0)) == 3

    def test_refine_doubles(self):
        g = ProcessGrid(2, 3).refine()
        assert (g.rows, g.cols) == (4, 6)

    def test_parent_position(self):
        g = ProcessGrid(4, 4)
        assert g.parent_position(3, 2) == (1, 1)
        assert g.parent_position(0, 1) == (0, 0)

    def test_bounds_checked(self):
        g = ProcessGrid(2, 2)
        with pytest.raises(ConfigError):
            g.rank_of(2, 0)
        with pytest.raises(ConfigError):
            g.pos_of(4)
