"""Durable stage checkpoints and elastic resume.

Properties under test:

* the store round-trips artifacts bit-exactly and every durability
  failure mode (truncation, bit-flip, stale key, foreign config) is
  detected, reported, and demoted to a full recompute — never a wrong
  answer;
* a :class:`~repro.errors.RankFailure` during strip refinement resumes
  from the persisted embedding (``resumed_from == "embed"``) and the
  resumed run is bit-identical to a fresh run fed the same artifact at
  the same rank count;
* a second identical invocation (a "cross-process restart") resumes at
  its *primary* attempt and reproduces the original partition exactly.
"""

import os

import numpy as np
import pytest

from repro.core.config import ScalaPartConfig
from repro.core.parallel import _RETRY_SALT, RetryPolicy, run_parallel
from repro.core.stages import EmbeddingArtifact
from repro.errors import (
    CheckpointError,
    CheckpointWarning,
    ConfigError,
    RankFailure,
)
from repro.parallel import FaultPlan, KillRank
from repro.parallel.checkpoint import (
    CheckpointContext,
    CheckpointKey,
    CheckpointPolicy,
    CheckpointStore,
    as_policy,
    config_fingerprint,
    graph_content_hash,
)
from repro.rng import derive_seed

FAST = ScalaPartConfig(coarsest_iters=80, smooth_iters=6)

#: calibrated for small_delaunay/FAST/seed=3/4 ranks: rank 1's 30th op
#: sits inside the 'partition/strip' refinement phase, well after the
#: embed stage persisted its artifact (see test body assertions).
STRIP_OP = 30


def _artifact(n=32, seed=0):
    rng = np.random.default_rng(seed)
    return EmbeddingArtifact(stage="embed", info={"levels": 3},
                             coords=rng.standard_normal((n, 2)))


def _key(stage="embed", **kw):
    base = dict(graph_hash="g" * 20, fingerprint="f" * 20, seed=3)
    base.update(kw)
    return CheckpointKey(stage=stage, **base)


# ----------------------------------------------------------------------
# store round trip + keying
# ----------------------------------------------------------------------

class TestStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        art = _artifact()
        path = store.save(_key(), art)
        assert path.exists() and path.name.startswith("embed-")
        back = store.load(_key())
        assert isinstance(back, EmbeddingArtifact)
        assert back.stage == "embed"
        assert back.info.get("levels") == 3
        np.testing.assert_array_equal(back.coords, art.coords)

    def test_save_leaves_no_temp_files(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(_key(), _artifact())
        store.save(_key(), _artifact(seed=1))  # idempotent overwrite
        leftovers = [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]
        assert leftovers == []
        assert len(list(tmp_path.glob("*.npz"))) == 1

    def test_distinct_keys_distinct_files(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(_key(seed=3), _artifact())
        store.save(_key(seed=4), _artifact())
        assert len(list(tmp_path.glob("embed-*.npz"))) == 2

    def test_missing_is_silent_none(self, tmp_path):
        art, reason = CheckpointStore(tmp_path).try_load(_key())
        assert art is None and reason is None

    def test_graph_hash_tracks_weights(self, small_delaunay):
        g = small_delaunay.graph
        h1 = graph_content_hash(g)
        assert h1 == graph_content_hash(g)
        vwgt = g.vwgt.copy()
        vwgt[0] += 1
        g2 = type(g)(indptr=g.indptr, indices=g.indices,
                     ewgt=g.ewgt, vwgt=vwgt)
        assert graph_content_hash(g2) != h1

    def test_fingerprint_tracks_config_and_k(self):
        base = config_fingerprint("ScalaPart", FAST)
        assert base == config_fingerprint("ScalaPart", FAST)
        assert base != config_fingerprint("ScalaPart", ScalaPartConfig())
        assert base != config_fingerprint("ScalaPart", FAST, k=4)
        assert base != config_fingerprint("KWay-Geometric", FAST)

    def test_unit_cost_model_spellings_share_a_key(self):
        """CLI passes the default cost model as the string "unit",
        the library as None — same semantics, same fingerprint."""
        assert (config_fingerprint("ScalaPart", FAST, cost_model="unit")
                == config_fingerprint("ScalaPart", FAST, cost_model=None))
        assert (config_fingerprint("ScalaPart", FAST, cost_model="degree")
                != config_fingerprint("ScalaPart", FAST))

    def test_generator_seed_rejected(self, tmp_path, small_delaunay):
        from repro.core.methods import get_method

        policy = as_policy(str(tmp_path))
        with pytest.raises(ConfigError, match="reproducible run seed"):
            CheckpointContext.for_run(
                policy, small_delaunay.graph, get_method("scalapart"),
                FAST, np.random.default_rng(0))

    def test_as_policy_forms(self, tmp_path):
        assert as_policy(None) is None
        store = CheckpointStore(tmp_path)
        assert as_policy(store).store is store
        policy = CheckpointPolicy(store=store, save=False)
        assert as_policy(policy) is policy
        assert as_policy(str(tmp_path)).store.root == store.root
        with pytest.raises(ConfigError, match="checkpoint must be"):
            as_policy(42)


# ----------------------------------------------------------------------
# corruption: detected, reported, demoted — never trusted
# ----------------------------------------------------------------------

class TestCorruption:
    def test_truncated_file_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(_key(), _artifact())
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CheckpointError, match="unreadable|crc32"):
            store.load(_key())
        with pytest.warns(CheckpointWarning, match="falling back"):
            art, reason = store.try_load(_key())
        assert art is None and reason

    def test_bitflip_fails_crc(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(_key(), _artifact())
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # land inside the coords payload
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError,
                           match="crc32 verification|unreadable"):
            store.load(_key())

    def test_stale_fingerprint_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(_key(), _artifact())
        # same digest directory, different recorded identity: simulate
        # by renaming an artifact saved under another fingerprint onto
        # this key's expected filename
        other = _key(fingerprint="e" * 20)
        store.save(other, _artifact())
        os.replace(store.path_for(other), store.path_for(_key()))
        with pytest.raises(CheckpointError,
                           match="key mismatch on fingerprint"):
            store.load(_key())

    def test_wrong_seed_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(_key(seed=3), _artifact())
        os.replace(store.path_for(_key(seed=3)),
                   store.path_for(_key(seed=9)))
        with pytest.raises(CheckpointError, match="key mismatch on seed"):
            store.load(_key(seed=9))

    def test_corrupt_store_run_still_completes(self, tmp_path,
                                               small_delaunay):
        """A poisoned directory costs a recompute, never correctness."""
        g = small_delaunay.graph
        clean = run_parallel("scalapart", g, 4, seed=3, config=FAST)
        first = run_parallel("scalapart", g, 4, seed=3, config=FAST,
                             checkpoint=str(tmp_path))
        (path,) = tmp_path.glob("embed-*.npz")
        path.write_bytes(b"not an npz at all")
        with pytest.warns(CheckpointWarning, match="falling back"):
            res = run_parallel("scalapart", g, 4, seed=3, config=FAST,
                               checkpoint=str(tmp_path))
        ck = res.extras["checkpoint"]
        assert ck["resumed_from"] is None
        assert len(ck["ignored"]) == 1 and "unreadable" in ck["ignored"][0]
        np.testing.assert_array_equal(res.parts, clean.parts)
        np.testing.assert_array_equal(first.parts, clean.parts)
        # the recompute re-persisted a good artifact over the bad one
        assert CheckpointStore(tmp_path) \
            .try_load(_run_key(g, seed=3))[0] is not None


def _run_key(graph, seed):
    return CheckpointKey(
        graph_hash=graph_content_hash(graph),
        fingerprint=config_fingerprint("ScalaPart", FAST),
        seed=seed, stage="embed",
    )


# ----------------------------------------------------------------------
# elastic resume, end to end
# ----------------------------------------------------------------------

class TestElasticResume:
    def _killed_run(self, graph, tmp_path, backend="sim"):
        plan = FaultPlan(seed=11,
                         kills=(KillRank(rank=1, at_op=STRIP_OP),))
        return run_parallel(
            "scalapart", graph, 4, seed=3, config=FAST, faults=plan,
            retry=RetryPolicy(retries=1), checkpoint=str(tmp_path),
            backend=backend,
        )

    def test_kill_lands_in_strip_phase(self, small_delaunay, tmp_path):
        """Calibration guard: STRIP_OP must hit refinement, after embed."""
        plan = FaultPlan(seed=11,
                         kills=(KillRank(rank=1, at_op=STRIP_OP),))
        with pytest.raises(RankFailure) as exc:
            run_parallel("scalapart", small_delaunay.graph, 4, seed=3,
                         config=FAST, faults=plan,
                         checkpoint=str(tmp_path))
        assert exc.value.phase.startswith("partition/")
        # embed completed (and persisted) before the kill fired
        assert list(tmp_path.glob("embed-*.npz"))

    def test_resume_from_embed_after_rank_failure(self, small_delaunay,
                                                  tmp_path):
        res = self._killed_run(small_delaunay.graph, tmp_path)
        rec = res.extras["recovery"]
        assert rec["recovered"] and rec["resumed_from"] == "embed"
        assert rec["attempts"][0]["status"] == "failed"
        assert rec["attempts"][1]["status"] == "ok"
        assert rec["attempts"][1]["resumed_from"] == "embed"
        res.validate(0.05)

    def test_resumed_run_bit_identical_to_fresh_on_artifact(
            self, small_delaunay, tmp_path):
        """The resumed retry must equal SP-PG7-NL fed the persisted
        embedding at the retry's derived seed — resume changes where
        the coordinates come from, nothing else."""
        g = small_delaunay.graph
        res = self._killed_run(g, tmp_path)
        artifact = CheckpointStore(tmp_path).load(_run_key(g, seed=3))
        fresh = run_parallel("SP-PG7-NL", g, 4, coords=artifact,
                             config=FAST,
                             seed=derive_seed(3, _RETRY_SALT, 1))
        np.testing.assert_array_equal(res.parts, fresh.parts)
        assert res.cut_size == fresh.cut_size

    def test_primary_attempt_resume_is_bit_identical(self, small_delaunay,
                                                     tmp_path):
        """Cross-process restart: a second identical invocation resumes
        at attempt 0 and reproduces the first run's partition."""
        g = small_delaunay.graph
        first = run_parallel("scalapart", g, 4, seed=3, config=FAST,
                             checkpoint=str(tmp_path))
        assert first.extras["checkpoint"]["resumed_from"] is None
        second = run_parallel("scalapart", g, 4, seed=3, config=FAST,
                              checkpoint=str(tmp_path))
        assert second.extras["checkpoint"]["resumed_from"] == "embed"
        np.testing.assert_array_equal(first.parts, second.parts)
        assert first.cut_size == second.cut_size

    def test_resume_respects_policy_flags(self, small_delaunay, tmp_path):
        g = small_delaunay.graph
        run_parallel("scalapart", g, 4, seed=3, config=FAST,
                     checkpoint=str(tmp_path))
        policy = CheckpointPolicy(store=CheckpointStore(tmp_path),
                                  resume=False)
        res = run_parallel("scalapart", g, 4, seed=3, config=FAST,
                           checkpoint=policy)
        assert res.extras["checkpoint"]["resumed_from"] is None
        no_save = CheckpointPolicy(store=CheckpointStore(tmp_path / "e"),
                                   save=False)
        run_parallel("scalapart", g, 4, seed=3, config=FAST,
                     checkpoint=no_save)
        assert not list((tmp_path / "e").glob("*.npz"))

    def test_different_seed_does_not_resume(self, small_delaunay, tmp_path):
        g = small_delaunay.graph
        run_parallel("scalapart", g, 4, seed=3, config=FAST,
                     checkpoint=str(tmp_path))
        res = run_parallel("scalapart", g, 4, seed=4, config=FAST,
                           checkpoint=str(tmp_path))
        assert res.extras["checkpoint"]["resumed_from"] is None
        assert len(list(tmp_path.glob("embed-*.npz"))) == 2

    def test_kway_geometric_resumes_itself(self, small_delaunay, tmp_path):
        g = small_delaunay.graph
        first = run_parallel("kway-geometric", g, 4, seed=3, k=4,
                             checkpoint=str(tmp_path))
        second = run_parallel("kway-geometric", g, 4, seed=3, k=4,
                              checkpoint=str(tmp_path))
        assert second.extras["checkpoint"]["resumed_from"] == "embed"
        np.testing.assert_array_equal(first.parts, second.parts)

    def test_explicit_coords_bypass_resume(self, small_delaunay, tmp_path):
        """Caller-supplied coordinates win over any persisted stage."""
        g = small_delaunay.graph
        run_parallel("scalapart", g, 4, seed=3, config=FAST,
                     checkpoint=str(tmp_path))
        rng = np.random.default_rng(0)
        res = run_parallel("scalapart", g, 4, seed=3, config=FAST,
                           coords=rng.standard_normal((g.num_vertices, 2)),
                           checkpoint=str(tmp_path))
        assert res.extras["checkpoint"]["resumed_from"] is None

    def test_resume_on_procs_backend(self, small_delaunay, tmp_path):
        res = self._killed_run(small_delaunay.graph, tmp_path,
                               backend="procs")
        rec = res.extras["recovery"]
        assert rec["recovered"] and rec["resumed_from"] == "embed"
        sim = self._killed_run(small_delaunay.graph,
                               tmp_path / "sim", backend="sim")
        np.testing.assert_array_equal(res.parts, sim.parts)


# ----------------------------------------------------------------------
# retry backoff jitter
# ----------------------------------------------------------------------

class TestRetryJitter:
    def test_delay_is_deterministic_per_seed_and_epoch(self):
        retry = RetryPolicy(base_delay=0.01, jitter=0.5)
        d1 = [retry.delay_for(3, e) for e in range(4)]
        d2 = [retry.delay_for(3, e) for e in range(4)]
        assert d1 == d2
        assert d1[0] == 0.0  # the primary attempt never sleeps
        assert all(d > 0.0 for d in d1[1:])
        assert d1 != [retry.delay_for(4, e) for e in range(4)]

    def test_delay_scales_with_backoff(self):
        retry = RetryPolicy(base_delay=0.01, jitter=0.0, backoff=2.0)
        assert retry.delay_for(3, 2) == pytest.approx(
            2.0 * retry.delay_for(3, 1))

    def test_zero_base_delay_never_sleeps(self):
        retry = RetryPolicy()
        assert [retry.delay_for(3, e) for e in range(4)] == [0.0] * 4

    def test_trail_records_jittered_delays(self, small_delaunay):
        plan = FaultPlan(seed=11,
                         kills=(KillRank(rank=1, at_op=STRIP_OP),))
        retry = RetryPolicy(retries=1, base_delay=0.001, jitter=0.5)
        res = run_parallel("scalapart", small_delaunay.graph, 4, seed=3,
                           config=FAST, faults=plan, retry=retry)
        trail = res.extras["recovery"]["attempts"]
        assert trail[0]["delay"] == 0.0
        assert trail[1]["delay"] == pytest.approx(
            retry.delay_for(3, 1))
        assert trail[1]["delay"] > 0.0
