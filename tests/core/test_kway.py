"""Tests for the k-way drivers: direct, recursive, and hierarchical.

Three contracts are pinned here:

* *parity of validity*: with the same seed, the direct ``kway-geometric``
  method and recursive bisection through any registered method both
  produce valid K-way partitions on a small graph suite;
* *parity of quality*: the direct method's cut stays within 1.25x of
  the recursive-bisection median (the acceptance bound of the k-way
  subsystem);
* *backend parity*: the distributed direct method is bit-identical
  between the sim and procs executors at k > 2, exactly like the
  bisection methods at k = 2.
"""

import statistics

import numpy as np
import pytest

from repro.core import ScalaPartConfig, run_parallel
from repro.core.cost import DegreeCost
from repro.core.kway import (
    hierarchical_kway,
    kway_geometric,
    parse_hierarchy,
    partition_kway,
)
from repro.errors import ConfigError, PartitionError
from repro.graph.generators import annulus_delaunay, grid2d, random_delaunay
from repro.graph.partition import kway_imbalance
from repro.parallel import procs_available

FAST = ScalaPartConfig(coarsest_iters=50, smooth_iters=5)

SUITE = [
    ("grid24", lambda: grid2d(24, 24)),
    ("delaunay500", lambda: random_delaunay(500, seed=2)),
    ("annulus", lambda: annulus_delaunay(500, seed=3)),
]


@pytest.fixture(scope="module")
def meshes():
    return {name: fn() for name, fn in SUITE}


class TestDirectRecursiveParity:
    @pytest.mark.parametrize("name", [s[0] for s in SUITE])
    @pytest.mark.parametrize("k", [4, 8])
    def test_same_seed_both_routes_valid(self, name, k, meshes):
        mesh = meshes[name]
        direct = partition_kway(mesh.graph, k, "kway-geometric",
                                coords=mesh.coords, config=FAST, seed=7)
        recursive = partition_kway(mesh.graph, k, "parmetis",
                                   config=FAST, seed=7)
        for res in (direct, recursive):
            assert res.k == k
            assert len(np.unique(res.parts)) == k
            res.validate(max_imbalance=0.10)

    def test_direct_cut_within_bound_of_recursive_median(self, meshes):
        """Direct k-way must stay within 1.25x of the recursive
        bisection median cut (the subsystem's acceptance bound)."""
        for name, mesh in meshes.items():
            direct = kway_geometric(mesh.graph, mesh.coords, config=FAST,
                                    seed=1, k=8)
            rec_cuts = [
                partition_kway(mesh.graph, 8, "scalapart", config=FAST,
                               seed=s).cut_size
                for s in (1, 2, 3)
            ]
            median = statistics.median(rec_cuts)
            assert direct.cut_size <= 1.25 * median, (
                f"{name}: direct {direct.cut_size} vs recursive "
                f"median {median}"
            )

    def test_recursive_path_records_refinement(self, meshes):
        mesh = meshes["delaunay500"]
        res = partition_kway(mesh.graph, 4, "parmetis", config=FAST, seed=4)
        assert res.extras["bisections"] == 3
        assert "refine_passes" in res.extras
        unrefined = partition_kway(mesh.graph, 4, "parmetis", config=FAST,
                                   seed=4, refine=False)
        assert res.cut_size <= unrefined.cut_size

    def test_k2_sets_bisection_view(self, meshes):
        mesh = meshes["grid24"]
        res = partition_kway(mesh.graph, 2, "kway-geometric",
                             coords=mesh.coords, config=FAST, seed=5)
        assert res.bisection is not None
        assert np.array_equal(res.bisection.side.astype(np.int64), res.parts)

    def test_bad_k_rejected(self, meshes):
        g = meshes["grid24"].graph
        with pytest.raises(PartitionError):
            partition_kway(g, 0, "parmetis")
        with pytest.raises(PartitionError):
            kway_geometric(g, k=g.num_vertices + 1)


class TestBackendParityKWay:
    """sim and procs must agree bit-for-bit at k > 2."""

    @pytest.mark.skipif(not procs_available(),
                        reason="procs backend unavailable (no fork)")
    @pytest.mark.parametrize("k", [4, 8])
    def test_bit_identical_partitions(self, k):
        mesh = random_delaunay(400, seed=3)
        sim = run_parallel("kway-geometric", mesh.graph, 4,
                           coords=mesh.coords, config=FAST, seed=11,
                           backend="sim", k=k)
        procs = run_parallel("kway-geometric", mesh.graph, 4,
                             coords=mesh.coords, config=FAST, seed=11,
                             backend="procs", k=k)
        assert np.array_equal(sim.parts, procs.parts)
        assert sim.cut_size == procs.cut_size
        sim.validate(max_imbalance=0.10)

    def test_run_parallel_threads_k(self):
        mesh = random_delaunay(400, seed=3)
        res = run_parallel("kway-geometric", mesh.graph, 4,
                           coords=mesh.coords, config=FAST, seed=11, k=8)
        assert res.k == 8
        assert len(np.unique(res.parts)) == 8
        res.validate(max_imbalance=0.10)

    def test_kway_on_bisection_method_rejected(self):
        mesh = random_delaunay(300, seed=3)
        with pytest.raises(ConfigError):
            run_parallel("scalapart", mesh.graph, 4, config=FAST,
                         seed=1, k=8)


class TestCostModels:
    def test_degree_cost_bounds_degree_imbalance(self):
        mesh = random_delaunay(500, seed=6)
        g = mesh.graph
        res = partition_kway(g, 4, "kway-geometric", coords=mesh.coords,
                             config=FAST, seed=2, cost_model="degree",
                             max_imbalance=0.05)
        costs = DegreeCost().vertex_costs(g)
        assert kway_imbalance(g, res.parts, 4, costs=costs) <= 0.10
        assert res.extras["cost_model"] == "degree"

    def test_array_cost_threads_through(self):
        mesh = random_delaunay(400, seed=7)
        g = mesh.graph
        costs = np.ones(g.num_vertices)
        costs[: g.num_vertices // 10] = 8.0  # a hot corner
        res = partition_kway(g, 4, "kway-geometric", coords=mesh.coords,
                             config=FAST, seed=3, cost_model=costs,
                             max_imbalance=0.05)
        assert kway_imbalance(g, res.parts, 4, costs=costs) <= 0.10


class TestHierarchy:
    def test_parse(self):
        assert parse_hierarchy("2x4") == (2, 4)
        assert parse_hierarchy("16X8") == (16, 8)
        for bad in ("2", "2x", "x4", "2x4x2", "ax2", "0x4"):
            with pytest.raises(ConfigError):
                parse_hierarchy(bad)

    def test_nested_labelling_consistent(self):
        mesh = random_delaunay(600, seed=8)
        res = hierarchical_kway(mesh.graph, 2, 4, "kway-geometric",
                                coords=mesh.coords, config=FAST, seed=9)
        assert res.k == 8
        assert len(np.unique(res.parts)) == 8
        # label // k2 recovers the node level exactly
        assert np.array_equal(res.parts // 4, res.extras["level1_parts"])
        assert res.extras["hierarchy"] == (2, 4)
        res.validate(max_imbalance=0.12)

    def test_hierarchy_through_recursive_method(self):
        mesh = random_delaunay(400, seed=10)
        res = hierarchical_kway(mesh.graph, 2, 2, "parmetis",
                                config=FAST, seed=11)
        assert res.k == 4
        assert np.array_equal(res.parts // 2, res.extras["level1_parts"])

    def test_too_many_parts_rejected(self):
        g = grid2d(3, 3).graph
        with pytest.raises(PartitionError):
            hierarchical_kway(g, 4, 4, "parmetis")
