"""Tests for the sequential ScalaPart pipeline."""

import numpy as np
import pytest

from repro.core import ScalaPartConfig, scalapart, sp_pg7_nl
from repro.errors import ConfigError, PartitionError
from repro.graph import CSRGraph
from repro.graph.generators import grid2d, random_delaunay


class TestConfig:
    def test_defaults_valid(self):
        cfg = ScalaPartConfig()
        assert cfg.block_size in range(2, 9)
        assert cfg.ncircles == 5

    def test_with_options(self):
        cfg = ScalaPartConfig().with_options(smooth_iters=3)
        assert cfg.smooth_iters == 3
        assert cfg.ncircles == 5

    @pytest.mark.parametrize(
        "kw",
        [
            {"coarsest_size": 0},
            {"block_size": 0},
            {"ncircles": 0},
            {"strip_factor": 0},
            {"max_imbalance": 1.5},
            {"smooth_iters": -1},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ConfigError):
            ScalaPartConfig(**kw)


class TestSPPG7NL:
    def test_partitions_coordinate_graph(self):
        g, pts = random_delaunay(1500, seed=0)
        res = sp_pg7_nl(g, pts, seed=1)
        res.validate(max_imbalance=0.06)
        assert res.method == "SP-PG7-NL"
        assert res.cut_size < 5 * np.sqrt(1500)

    def test_strip_refinement_improves_geometric_cut(self):
        g, pts = random_delaunay(2000, seed=2)
        res = sp_pg7_nl(g, pts, seed=3)
        assert res.cut_weight <= res.extras["geometric_cut"] + 1e-9

    def test_stage_timings(self):
        g, pts = grid2d(20, 20)
        res = sp_pg7_nl(g, pts, seed=4)
        assert set(res.stage_seconds) == {"partition", "refine"}

    def test_strip_factor_small_multiple(self):
        g, pts = random_delaunay(2500, seed=5)
        res = sp_pg7_nl(g, pts, seed=6)
        # Fig 2: the strip holds a small multiple of the separator
        assert res.extras["strip_size"] < 0.5 * g.num_vertices


class TestScalaPart:
    def test_full_pipeline_on_mesh(self):
        g = random_delaunay(2000, seed=7).graph
        res = scalapart(g, seed=8)
        res.validate(max_imbalance=0.06)
        assert res.method == "ScalaPart"
        # embedding + geometric cut on a planar mesh: O(sqrt(n))-ish
        assert res.cut_size < 8 * np.sqrt(2000)

    def test_no_coordinates_needed(self):
        # kkt-like graphs have no native coordinates; SP must still work
        from repro.graph.generators import kkt_power_like

        g = kkt_power_like(18, seed=9).graph
        res = scalapart(g, seed=10)
        res.validate(max_imbalance=0.06)

    def test_stages_reported(self):
        g = grid2d(24, 24).graph
        res = scalapart(g, seed=11)
        assert "embed" in res.stage_seconds
        assert "partition" in res.stage_seconds
        assert "refine" in res.stage_seconds
        assert res.extras["levels"] >= 1

    def test_embedding_dominates_time(self):
        """Fig 7: embedding is by far the largest ScalaPart component."""
        g = random_delaunay(3000, seed=12).graph
        res = scalapart(g, seed=13)
        assert res.stage_seconds["embed"] > res.stage_seconds["partition"]

    def test_deterministic(self):
        g = random_delaunay(600, seed=14).graph
        a = scalapart(g, seed=15)
        b = scalapart(g, seed=15)
        assert np.array_equal(a.bisection.side, b.bisection.side)

    def test_rejects_tiny_graph(self):
        with pytest.raises(PartitionError):
            scalapart(CSRGraph.empty(1))

    def test_custom_config(self):
        g = grid2d(16, 16).graph
        cfg = ScalaPartConfig(smooth_iters=4, coarsest_iters=60, ncircles=3)
        res = scalapart(g, cfg, seed=16)
        res.validate(max_imbalance=0.06)
