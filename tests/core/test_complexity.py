"""Tests for the §3.1 analytic model and its agreement with the VM."""

import pytest

from repro.core.complexity import ComplexityModel


class TestClosedForms:
    def test_sequential_is_free(self):
        m = ComplexityModel()
        assert m.embedding_comm(10**6, 1) == 0.0
        assert m.partition_comm(1) == 0.0

    def test_embedding_grows_with_p_at_scale(self):
        m = ComplexityModel()
        n = 10**6
        # beyond the boundary-dominated regime the cost grows with P
        assert m.embedding_comm(n, 1024) > m.embedding_comm(n, 256)

    def test_partition_far_cheaper_than_embedding(self):
        m = ComplexityModel()
        assert m.partition_comm(16) < m.embedding_comm(10**6, 16)
        for p in (256, 1024):
            assert m.partition_comm(p) < 0.1 * m.embedding_comm(10**6, p)

    def test_latency_term_dominates_at_scale(self):
        # the paper: "costs related to message latency of the form
        # ts(log P)^2 will be dominant"
        m = ComplexityModel()
        assert m.dominant_term(10**6, 1024) in ("ts_log2", "tw_P_log2")

    def test_total_is_sum(self):
        m = ComplexityModel()
        assert m.total_comm(10**5, 64) == pytest.approx(
            m.embedding_comm(10**5, 64) + m.partition_comm(64)
        )


class TestAgreementWithSimulator:
    def test_partition_comm_shape_matches_vm(self):
        """The VM's SP-PG7-NL communication should grow ~log P, like the
        3(ts + tw c log P) closed form — i.e. slowly."""
        from repro.core.parallel import sp_pg7_nl_parallel
        from repro.graph.generators import random_delaunay

        g, pts = random_delaunay(2000, seed=0)
        t64 = sp_pg7_nl_parallel(g, pts, 64, seed=1).seconds
        t1024 = sp_pg7_nl_parallel(g, pts, 1024, seed=1).seconds
        # 16x more ranks must cost far less than 4x more time
        assert t1024 < 4 * t64

    def test_embedding_comm_grows_with_p_in_vm(self):
        from repro.core.parallel import scalapart_parallel
        from repro.core import ScalaPartConfig
        from repro.graph.generators import random_delaunay

        g = random_delaunay(3000, seed=1).graph
        cfg = ScalaPartConfig(coarsest_iters=60, smooth_iters=8)
        r16 = scalapart_parallel(g, 16, cfg, seed=2)
        r256 = scalapart_parallel(g, 256, cfg, seed=2)
        comm16 = r16.stage_seconds["embed"] * r16.extras["phase_comm"]["embed"]
        comm256 = r256.stage_seconds["embed"] * r256.extras["phase_comm"]["embed"]
        assert comm256 > comm16
