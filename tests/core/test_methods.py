"""Tests for the central method registry and registry-driven dispatch.

The registry is the single source of truth for every consumer (bench
runner, CLI, recursive bisection, the parallel runner), so these tests
pin down three properties: the registry is *complete* (every method the
paper evaluates is present and runnable), dispatch through it is
*cut-for-cut identical* to calling the underlying implementations
directly with the same seeds, and a stage artifact captured once is
*re-feedable* to every coordinate-based method.
"""

import numpy as np
import pytest

from repro.core import ScalaPartConfig, run_parallel, scalapart
from repro.core.methods import (
    METHOD_REGISTRY,
    MethodSpec,
    cli_choices,
    get_method,
    method_names,
    methods_table,
    register_method,
)
from repro.core.parallel import (
    parmetis_parallel,
    rcb_parallel,
    scalapart_parallel,
)
from repro.core.recursive import recursive_bisection
from repro.core.stages import EmbeddingArtifact, GeometricArtifact, as_coords
from repro.errors import ConfigError, GeometryError, PartitionError
from repro.graph.generators import random_delaunay

FAST = ScalaPartConfig(coarsest_iters=50, smooth_iters=5)

EXPECTED = {
    "ScalaPart", "SP-PG7-NL", "ParMetis-like", "Pt-Scotch-like", "RCB",
    "Spectral", "G30", "G7", "G7-NL", "KWay-Geometric",
}
EXPECTED_TRACEABLE = {
    "ScalaPart", "SP-PG7-NL", "ParMetis-like", "Pt-Scotch-like", "RCB",
    "KWay-Geometric",
}


@pytest.fixture(scope="module")
def small():
    return random_delaunay(400, seed=0)


class TestRegistryCompleteness:
    def test_all_methods_registered(self):
        assert set(METHOD_REGISTRY) == EXPECTED

    def test_every_method_has_sequential_entry(self):
        for spec in METHOD_REGISTRY.values():
            assert callable(spec.sequential), spec.name

    def test_traceable_set(self):
        assert set(method_names(traceable_only=True)) == EXPECTED_TRACEABLE

    def test_cli_names_unique_and_lowercase(self):
        names = cli_choices()
        assert len(names) == len(set(names)) == len(EXPECTED)
        assert all(n == n.lower() for n in names)

    def test_lookup_by_canonical_cli_and_case(self):
        assert get_method("ScalaPart") is METHOD_REGISTRY["ScalaPart"]
        assert get_method("scalapart") is METHOD_REGISTRY["ScalaPart"]
        assert get_method("SCALAPART") is METHOD_REGISTRY["ScalaPart"]
        assert get_method("scotch") is METHOD_REGISTRY["Pt-Scotch-like"]

    def test_unknown_method_raises(self):
        with pytest.raises(ConfigError):
            get_method("Magic")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):
            register_method("ScalaPart")(lambda graph, coords=None, **kw: None)

    def test_methods_table_lists_everything(self):
        table = methods_table()
        for name in EXPECTED:
            assert name in table

    def test_balance_contracts(self):
        assert get_method("parmetis").balance_bound is not None
        assert get_method("scotch").balance_bound is not None
        assert get_method("rcb").balance_bound is not None
        # geometric methods make no hard balance guarantee (the circle
        # selection falls back to the least-imbalanced candidate)
        assert get_method("scalapart").balance_bound is None
        assert get_method("sp-pg7-nl").balance_bound is None


class TestEveryMethodRuns:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_sequential_entry_point(self, name, small):
        g, pts = small
        spec = get_method(name)
        coords = pts if spec.needs_coords else None
        cfg = FAST if spec.accepts_config else None
        res = spec.sequential(g, coords, config=cfg, seed=1)
        assert res.method == spec.name
        res.validate(max_imbalance=0.3)
        assert 0 < res.cut_size < g.num_edges

    @pytest.mark.parametrize("name", sorted(EXPECTED_TRACEABLE))
    def test_parallel_p1(self, name, small):
        g, pts = small
        spec = get_method(name)
        coords = pts if spec.needs_coords else None
        cfg = FAST if spec.accepts_config else None
        res = run_parallel(name, g, 1, coords=coords, config=cfg, seed=2)
        assert res.simulated
        assert res.method == spec.name
        res.validate(max_imbalance=0.3)


class TestDispatchParity:
    """Registry-driven dispatch must be cut-for-cut identical (same
    seeds) to the direct pre-refactor entry points."""

    def test_sequential_scalapart(self, small):
        g, _ = small
        a = scalapart(g, FAST, seed=3)
        b = get_method("scalapart").sequential(g, config=FAST, seed=3)
        assert a.bisection.side.tobytes() == b.bisection.side.tobytes()

    def test_parallel_scalapart(self, small):
        g, _ = small
        a = scalapart_parallel(g, 4, FAST, seed=3)
        b = run_parallel("ScalaPart", g, 4, config=FAST, seed=3)
        assert a.bisection.side.tobytes() == b.bisection.side.tobytes()
        assert a.seconds == b.seconds

    def test_parallel_parmetis(self, small):
        g, _ = small
        a = parmetis_parallel(g, 4, seed=4)
        b = run_parallel("parmetis", g, 4, seed=4)
        assert a.bisection.side.tobytes() == b.bisection.side.tobytes()

    def test_parallel_rcb_ignores_seed(self, small):
        g, pts = small
        a = rcb_parallel(g, pts, 4)
        b = run_parallel("rcb", g, 4, coords=pts, seed=999)
        assert a.bisection.side.tobytes() == b.bisection.side.tobytes()
        assert a.seconds == b.seconds

    def test_run_parallel_rejects_sequential_only(self, small):
        g, pts = small
        with pytest.raises(ConfigError):
            run_parallel("spectral", g, 4, seed=1)

    def test_run_parallel_needs_two_vertices(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges(1, [])
        with pytest.raises(PartitionError):
            run_parallel("scalapart", g, 2, seed=1)


class TestArtifactReuse:
    """One embedding artifact feeds SP-PG7-NL and RCB — the Figure-4
    comparison on identical coordinates without recomputing."""

    @pytest.fixture(scope="class")
    def embedded(self):
        g = random_delaunay(500, seed=5).graph
        res = scalapart(g, FAST, seed=6)
        return g, res

    def test_scalapart_exposes_artifacts(self, embedded):
        g, res = embedded
        art = res.extras["artifacts"]["embed"]
        assert isinstance(art, EmbeddingArtifact)
        assert art.coords.shape == (g.num_vertices, 2)
        assert np.array_equal(art.coords, res.extras["pos"])
        assert isinstance(res.extras["artifacts"]["partition"],
                          GeometricArtifact)

    def test_sequential_runners_accept_artifact(self, embedded):
        g, res = embedded
        art = res.extras["artifacts"]["embed"]
        for name in ("sp-pg7-nl", "rcb"):
            spec = get_method(name)
            via_art = spec.sequential(g, art, seed=7)
            via_raw = spec.sequential(g, art.coords, seed=7)
            assert via_art.bisection.side.tobytes() == \
                via_raw.bisection.side.tobytes(), name

    def test_parallel_runners_accept_artifact(self, embedded):
        g, res = embedded
        art = res.extras["artifacts"]["embed"]
        for name in ("sp-pg7-nl", "rcb"):
            via_art = run_parallel(name, g, 4, coords=art, seed=7)
            via_raw = run_parallel(name, g, 4, coords=art.coords, seed=7)
            assert via_art.bisection.side.tobytes() == \
                via_raw.bisection.side.tobytes(), name

    def test_as_coords_rejects_none_and_wrong_kind(self, embedded):
        g, res = embedded
        with pytest.raises(GeometryError):
            as_coords(None)
        with pytest.raises(GeometryError):
            as_coords(res.extras["artifacts"]["refine"])


class TestBalanceValidation:
    """Satellite: the once-dead ``max_imbalance`` of ``_package`` is now
    wired through — results are validated against the spec's declared
    balance bound."""

    def _lopsided_spec(self, bound):
        def prog(comm, graph, *, coords=None, config=None, seed=None,
                 max_imbalance=None):
            yield from comm.barrier()
            side = np.zeros(graph.num_vertices, dtype=np.int8)
            side[0] = 1
            return side, {}

        return MethodSpec(name="Lopsided", cli_name="lopsided",
                          distributed=prog, balance_bound=bound)

    def test_declared_bound_enforced(self, small):
        g, _ = small
        with pytest.raises(PartitionError):
            run_parallel(self._lopsided_spec(0.05), g, 2, seed=1)

    def test_no_bound_no_validation(self, small):
        g, _ = small
        res = run_parallel(self._lopsided_spec(None), g, 2, seed=1)
        assert res.imbalance > 0.5  # grossly unbalanced, but packaged

    def test_registered_bounds_hold_in_practice(self, small):
        g, _ = small
        for name in ("parmetis", "scotch"):
            res = run_parallel(name, g, 8, seed=3)
            assert res.imbalance <= get_method(name).balance_bound


class TestRecursiveByName:
    def test_name_matches_callable(self, small):
        g, _ = small
        spec = get_method("parmetis")
        a = recursive_bisection(g, 4, "parmetis", seed=1)
        b = recursive_bisection(g, 4, spec.sequential, seed=1)
        assert np.array_equal(a.parts, b.parts)
        assert a.bisections == b.bisections == 3

    def test_coordinate_method_by_name(self, small):
        g, pts = small
        res = recursive_bisection(g, 3, "rcb", coords=pts, seed=2)
        assert len(np.unique(res.parts)) == 3

    def test_coordinate_method_without_coords_rejected(self, small):
        g, _ = small
        with pytest.raises(PartitionError):
            recursive_bisection(g, 4, "rcb", seed=2)

    def test_unknown_name_rejected(self, small):
        g, _ = small
        with pytest.raises(ConfigError):
            recursive_bisection(g, 4, "magic", seed=2)
