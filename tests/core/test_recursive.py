"""Tests for k-way partitioning via recursive bisection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import parmetis_like, rcb_bisect
from repro.core import ScalaPartConfig, recursive_bisection, scalapart
from repro.core.recursive import kway_cut, kway_imbalance
from repro.errors import PartitionError
from repro.graph.generators import grid2d, random_delaunay

FAST = ScalaPartConfig(coarsest_iters=50, smooth_iters=5)


def sp_bisector(graph, seed=None):
    return scalapart(graph, FAST, seed=seed)


class TestKWayMetrics:
    def test_kway_cut_matches_bisection(self):
        g = grid2d(8, 8).graph
        parts = (np.arange(64) % 8 >= 4).astype(np.int64)
        assert kway_cut(g, parts) == 8

    def test_kway_imbalance_perfect(self):
        g = grid2d(4, 4).graph
        parts = np.arange(16) % 4
        assert kway_imbalance(g, parts, 4) == pytest.approx(0.0)

    def test_kway_imbalance_skewed(self):
        g = grid2d(4, 4).graph
        parts = np.zeros(16, dtype=np.int64)
        assert kway_imbalance(g, parts, 2) == pytest.approx(1.0)


class TestRecursiveBisection:
    @pytest.mark.parametrize("k", [2, 3, 4, 7, 8])
    def test_k_parts_balanced(self, k):
        g = random_delaunay(1200, seed=0).graph
        res = recursive_bisection(g, k, parmetis_like, seed=1)
        res.validate(max_imbalance=0.30)
        assert len(np.unique(res.parts)) == k
        assert res.bisections == k - 1

    def test_k1_trivial(self):
        g = grid2d(5, 5).graph
        res = recursive_bisection(g, 1, parmetis_like, seed=2)
        assert (res.parts == 0).all()
        assert res.bisections == 0

    def test_invalid_k(self):
        g = grid2d(4, 4).graph
        with pytest.raises(PartitionError):
            recursive_bisection(g, 0, parmetis_like)

    def test_coordinate_bisector(self):
        g, pts = random_delaunay(800, seed=3)
        res = recursive_bisection(g, 4, rcb_bisect, coords=pts, seed=4)
        res.validate(max_imbalance=0.2)
        # RCB 4-way of a square mesh: ~O(sqrt n) cut per internal border
        assert res.cut_size < 8 * np.sqrt(800)

    def test_scalapart_kway(self):
        g = random_delaunay(1000, seed=5).graph
        res = recursive_bisection(g, 4, sp_bisector, seed=6)
        res.validate(max_imbalance=0.30)
        assert res.cut_size < 0.3 * g.num_edges

    def test_kway_cut_at_least_bisection_cut(self):
        g = random_delaunay(900, seed=7).graph
        two = recursive_bisection(g, 2, parmetis_like, seed=8).cut_size
        four = recursive_bisection(g, 4, parmetis_like, seed=8).cut_size
        assert four >= two

    def test_part_sizes_proportional_for_odd_k(self):
        g = grid2d(30, 30).graph
        res = recursive_bisection(g, 3, parmetis_like, seed=9)
        sizes = res.part_sizes
        assert sizes.min() > 0.6 * (900 / 3)


@settings(max_examples=10, deadline=None)
@given(k=st.integers(2, 6), seed=st.integers(0, 1000))
def test_recursive_bisection_labels_always_complete(k, seed):
    g = random_delaunay(300, seed=11).graph
    res = recursive_bisection(g, k, parmetis_like, seed=seed)
    assert res.parts.shape == (300,)
    assert set(np.unique(res.parts)) <= set(range(k))
