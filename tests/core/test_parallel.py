"""Integration tests for the distributed partitioners on the VM."""

import numpy as np
import pytest

from repro.core import ScalaPartConfig
from repro.core.parallel import (
    parmetis_parallel,
    rcb_parallel,
    scalapart_parallel,
    scotch_parallel,
    sp_pg7_nl_parallel,
)
from repro.graph.generators import random_delaunay


FAST = ScalaPartConfig(coarsest_iters=80, smooth_iters=6)


class TestDistScalaPart:
    @pytest.mark.parametrize("p", [1, 4, 16])
    def test_valid_bisection_all_p(self, p):
        g = random_delaunay(1200, seed=0).graph
        res = scalapart_parallel(g, p, FAST, seed=1)
        res.validate(max_imbalance=0.1)
        assert res.simulated
        assert res.cut_size < 8 * np.sqrt(1200)

    def test_phases_present(self):
        g = random_delaunay(800, seed=1).graph
        res = scalapart_parallel(g, 4, FAST, seed=2)
        for phase in ("coarsen", "embed", "partition"):
            assert phase in res.stage_seconds

    def test_embedding_dominates(self):
        """Figure 7: embedding is the largest component."""
        g = random_delaunay(1500, seed=2).graph
        res = scalapart_parallel(g, 16, FAST, seed=3)
        assert res.stage_seconds["embed"] > res.stage_seconds["partition"]

    def test_cut_varies_with_p(self):
        """Tables 2–3 report SP cut ranges across P."""
        g = random_delaunay(1200, seed=3).graph
        cuts = {scalapart_parallel(g, p, FAST, seed=4).cut_size
                for p in (1, 4, 16)}
        assert len(cuts) > 1

    def test_deterministic(self):
        g = random_delaunay(600, seed=4).graph
        a = scalapart_parallel(g, 4, FAST, seed=5)
        b = scalapart_parallel(g, 4, FAST, seed=5)
        assert np.array_equal(a.bisection.side, b.bisection.side)
        assert a.seconds == b.seconds

    def test_scales_down_with_p(self):
        g = random_delaunay(3000, seed=5).graph
        t1 = scalapart_parallel(g, 1, FAST, seed=6).seconds
        t64 = scalapart_parallel(g, 64, FAST, seed=6).seconds
        assert t64 < t1


class TestDistBaselines:
    @pytest.mark.parametrize("runner", [parmetis_parallel, scotch_parallel])
    @pytest.mark.parametrize("p", [1, 4, 16])
    def test_multilevel_valid(self, runner, p):
        g = random_delaunay(1200, seed=6).graph
        res = runner(g, p, seed=7)
        res.validate(max_imbalance=0.12)
        assert res.cut_size < 10 * np.sqrt(1200)

    def test_scotch_quality_beats_parmetis(self):
        wins = 0
        for s in range(3):
            g = random_delaunay(1500, seed=20 + s).graph
            cs = scotch_parallel(g, 8, seed=s).cut_size
            cp = parmetis_parallel(g, 8, seed=s).cut_size
            wins += cs <= cp
        assert wins >= 2

    def test_scotch_scales_worse_than_parmetis(self):
        """The paper's headline shape: Pt-Scotch's cost relative to
        ParMetis grows with P (its band refinement has a serial
        component), so the ratio widens from P=1 to P=256."""
        # needs a graph large enough that Scotch's serial band work is
        # visible against the latency floor both methods share
        g = random_delaunay(6000, seed=8).graph
        ts = scotch_parallel(g, 256, seed=9).seconds
        tp = parmetis_parallel(g, 256, seed=9).seconds
        assert ts > tp  # Scotch is the slowest at scale (Fig 3)

    def test_rcb_fast_and_valid(self):
        g, pts = random_delaunay(1500, seed=9)
        res = rcb_parallel(g, pts, 16)
        res.validate(max_imbalance=0.1)
        t_sp = scalapart_parallel(g, 16, FAST, seed=10).seconds
        assert res.seconds < t_sp

    def test_sp_pg7_nl_partition_only(self):
        g, pts = random_delaunay(1500, seed=10)
        res = sp_pg7_nl_parallel(g, pts, 16, FAST, seed=11)
        res.validate(max_imbalance=0.1)
        # partition-only must be far cheaper than the full pipeline
        full = scalapart_parallel(g, 16, FAST, seed=11).seconds
        assert res.seconds < 0.5 * full
