"""Tests for the shared pipeline stages.

Both drivers (sequential ``scalapart`` and the SPMD ``dist_scalapart``)
are thin compositions of the same three Stage objects; these tests run
the stages by hand and check the composition reproduces the drivers
bit-for-bit, which is what makes the stages safe to mix and match
(e.g. embed once, partition many ways).
"""

import numpy as np
import pytest

from repro.core import ScalaPartConfig, scalapart
from repro.core.methods import get_method
from repro.core.stages import (
    EMBED_STAGE,
    GEOMETRIC_STAGE,
    PARTITION_STAGES,
    SCALAPART_STAGES,
    STRIP_REFINE_STAGE,
    EmbeddingArtifact,
    GeometricArtifact,
    RefineArtifact,
)
from repro.graph.generators import random_delaunay
from repro.parallel.engine import run_spmd
from repro.rng import derive_seed

CFG = ScalaPartConfig(coarsest_iters=50, smooth_iters=5)


@pytest.fixture(scope="module")
def graph():
    return random_delaunay(350, seed=9).graph


class TestStageArtifacts:
    def test_embed_stage(self, graph):
        art = EMBED_STAGE.run(graph, None, CFG, seed=4)
        assert isinstance(art, EmbeddingArtifact)
        assert art.stage == "embed"
        assert art.coords.shape == (graph.num_vertices, 2)
        assert art.seconds > 0
        assert art.info["levels"] >= 1

    def test_geometric_stage(self, graph):
        emb = EMBED_STAGE.run(graph, None, CFG, seed=4)
        geo = GEOMETRIC_STAGE.run(graph, emb, CFG, seed=4)
        assert isinstance(geo, GeometricArtifact)
        assert geo.stage == "partition"
        assert geo.cut == geo.bisection.cut_size
        assert geo.sdist.shape == (graph.num_vertices,)

    def test_refine_stage_improves_or_matches(self, graph):
        emb = EMBED_STAGE.run(graph, None, CFG, seed=4)
        geo = GEOMETRIC_STAGE.run(graph, emb, CFG, seed=4)
        ref = STRIP_REFINE_STAGE.run(graph, geo, CFG, seed=4)
        assert isinstance(ref, RefineArtifact)
        assert ref.stage == "refine"
        assert ref.bisection.cut_size <= geo.cut

    def test_stage_tuples(self):
        assert SCALAPART_STAGES == (EMBED_STAGE, GEOMETRIC_STAGE,
                                    STRIP_REFINE_STAGE)
        assert PARTITION_STAGES == (GEOMETRIC_STAGE, STRIP_REFINE_STAGE)


class TestCompositionMatchesDrivers:
    def test_sequential_composition(self, graph):
        """Running the three stages by hand == scalapart()."""
        upstream = None
        for stage in SCALAPART_STAGES:
            upstream = stage.run(graph, upstream, CFG, seed=8)
        res = scalapart(graph, CFG, seed=8)
        assert upstream.bisection.side.tobytes() == \
            res.bisection.side.tobytes()
        assert upstream.bisection.cut_size == res.bisection.cut_size

    def test_distributed_composition(self, graph):
        """Hand-composed run_dist chain == the registered ScalaPart
        program (same sides, same simulated schedule)."""

        def composed(comm, g):
            emb = yield from EMBED_STAGE.run_dist(comm, g, None, CFG, seed=8)
            sel = yield from GEOMETRIC_STAGE.run_dist(comm, g, emb,
                                                      CFG, seed=8)
            side, _info = yield from STRIP_REFINE_STAGE.run_dist(
                comm, g, sel, CFG, seed=8)
            return side

        spec = get_method("ScalaPart")
        engine_seed = derive_seed(8, spec.seed_salt)
        a = run_spmd(composed, 4, graph, seed=engine_seed)
        b = run_spmd(
            lambda comm, g: spec.distributed(comm, g, config=CFG, seed=8),
            4, graph, seed=engine_seed,
        )
        side_b, _info = b.values[0]
        assert np.array_equal(a.values[0], side_b)
        # the composed run performs the same communication schedule
        assert np.array_equal(a.clocks, b.clocks)

    def test_dist_embedding_feeds_sequential_stages(self, graph):
        """An artifact captured on the distributed face drops straight
        into the sequential face — the faces share the artifact types."""

        def prog(comm, g):
            art = yield from EMBED_STAGE.run_dist(comm, g, None, CFG, seed=5)
            return art

        art = run_spmd(prog, 4, graph, seed=0).values[0]
        assert isinstance(art, EmbeddingArtifact)
        assert art.coords.shape == (graph.num_vertices, 2)
        geo = GEOMETRIC_STAGE.run(graph, art, CFG, seed=5)
        ref = STRIP_REFINE_STAGE.run(graph, geo, CFG, seed=5)
        assert ref.bisection.cut_size <= geo.cut
