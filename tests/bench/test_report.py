"""Tests for the bench report formatting helpers."""

from repro.bench import banner, format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title_banner(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert "My Table" in out
        assert out.splitlines()[0].startswith("=")

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456], [1234.5], [0.0]])
        assert "0.123" in out
        assert "0" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out


class TestFormatSeries:
    def test_series_rows(self):
        out = format_series("T", "P", [1, 2], [("m1", [10, 20]), ("m2", [3, 4])])
        assert "m1" in out and "m2" in out
        assert "20" in out

    def test_banner(self):
        assert banner("hi").count("\n") == 2
