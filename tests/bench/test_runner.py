"""Tests for the cached sweep runner (using cheap methods only)."""

import json

import pytest

from repro.bench import runner
from repro.bench.runner import RunRecord, run_method
from repro.errors import ConfigError


class TestRunMethod:
    def test_rcb_record_fields(self):
        rec = run_method("RCB", "ecology1", 4, use_cache=False)
        assert rec.method == "RCB"
        assert rec.graph == "ecology1"
        assert rec.p == 4
        assert rec.cut > 0
        assert rec.seconds > 0
        assert rec.simulated

    def test_sequential_method_ignores_p(self):
        a = run_method("G7-NL", "ecology1", use_cache=False)
        assert not a.simulated
        assert a.cut > 0

    def test_unknown_method(self):
        with pytest.raises(ConfigError):
            run_method("Magic", "ecology1", use_cache=False)

    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setattr(runner, "_CACHE_DIR", tmp_path)
        runner._MEMO.clear()
        a = run_method("RCB", "ecology2", 4)
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        # cache hit returns the identical record
        runner._MEMO.clear()
        b = run_method("RCB", "ecology2", 4)
        assert a == b

    def test_record_json_serialisable(self):
        rec = run_method("RCB", "ecology1", 4, use_cache=False)
        from dataclasses import asdict

        blob = json.dumps(asdict(rec))
        back = RunRecord(**json.loads(blob))
        assert back == rec

    def test_clear_cache(self, tmp_path, monkeypatch):
        monkeypatch.setattr(runner, "_CACHE_DIR", tmp_path)
        run_method("RCB", "ecology1", 4)
        runner.clear_cache()
        assert not list(tmp_path.glob("*.json"))
        assert not runner._MEMO


class TestRegistryView:
    def test_methods_mirrors_registry(self):
        from repro.bench.runner import METHODS
        from repro.core.methods import METHOD_REGISTRY

        assert set(METHODS) == set(METHOD_REGISTRY)
        for name, needs_coords in METHODS.items():
            assert needs_coords == METHOD_REGISTRY[name].needs_coords

    def test_cache_key_versioned(self):
        # the key must change when the cache format version bumps, so a
        # stale on-disk cache can never satisfy a new-format read
        k = runner._cache_key("RCB", "ecology1", 4)
        assert len(k) == 20
        assert k != runner._cache_key("RCB", "ecology1", 8)
