"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph.generators import grid2d, random_delaunay
from repro.graph.io import write_coords, write_metis


@pytest.fixture
def graph_file(tmp_path):
    g = grid2d(12, 12).graph
    p = tmp_path / "g.graph"
    write_metis(g, p)
    return str(p), g


class TestInfo:
    def test_prints_stats(self, graph_file, capsys):
        path, g = graph_file
        assert main(["info", path]) == 0
        out = capsys.readouterr().out
        assert "144" in out
        assert "connected     : True" in out


class TestPartition:
    def test_bisection_to_file(self, graph_file, tmp_path):
        path, g = graph_file
        out = tmp_path / "g.part"
        rc = main(["partition", path, "--method", "parmetis",
                   "--out", str(out), "--seed", "1"])
        assert rc == 0
        parts = np.array([int(x) for x in out.read_text().split()])
        assert parts.shape == (144,)
        assert set(np.unique(parts)) == {0, 1}

    def test_kway(self, graph_file, tmp_path):
        path, g = graph_file
        out = tmp_path / "g.part4"
        rc = main(["partition", path, "--method", "parmetis", "--k", "4",
                   "--out", str(out), "--seed", "2"])
        assert rc == 0
        parts = np.array([int(x) for x in out.read_text().split()])
        assert len(np.unique(parts)) == 4

    def test_rcb_with_coords(self, tmp_path):
        g, pts = random_delaunay(200, seed=3)
        gp = tmp_path / "d.graph"
        cp = tmp_path / "d.xy"
        write_metis(g, gp)
        write_coords(pts, cp)
        out = tmp_path / "d.part"
        rc = main(["partition", str(gp), "--method", "rcb",
                   "--coords", str(cp), "--out", str(out)])
        assert rc == 0
        parts = [int(x) for x in out.read_text().split()]
        assert abs(sum(parts) - 100) <= 1  # balanced bisection

    def test_coords_mismatch_errors(self, graph_file, tmp_path):
        path, g = graph_file
        cp = tmp_path / "bad.xy"
        write_coords(np.zeros((3, 2)), cp)
        rc = main(["partition", path, "--method", "rcb", "--coords", str(cp)])
        assert rc == 2

    def test_stdout_output(self, graph_file, capsys):
        path, g = graph_file
        assert main(["partition", path, "--method", "spectral"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 144

    def test_parts_alias(self, graph_file, tmp_path, capsys):
        """``--parts`` is the METIS-style spelling of ``--k``."""
        path, g = graph_file
        out = tmp_path / "g.part3"
        rc = main(["partition", path, "--method", "parmetis", "--parts", "3",
                   "--out", str(out), "--seed", "2"])
        assert rc == 0
        parts = np.array([int(x) for x in out.read_text().split()])
        assert len(np.unique(parts)) == 3
        err = capsys.readouterr().err
        assert "kway_cut=" in err
        assert "kway_imbalance=" in err

    def test_bisection_reports_cut(self, graph_file, capsys):
        path, g = graph_file
        assert main(["partition", path, "--method", "parmetis",
                     "--seed", "1"]) == 0
        err = capsys.readouterr().err
        assert "cut=" in err
        assert "imbalance=" in err

    def test_registry_methods_available(self, graph_file, tmp_path):
        """Methods registered in the central registry are CLI choices
        without any CLI change (here: the geometric baseline g30)."""
        path, g = graph_file
        out = tmp_path / "g.g30"
        rc = main(["partition", path, "--method", "g30",
                   "--out", str(out), "--seed", "0"])
        assert rc == 0
        parts = [int(x) for x in out.read_text().split()]
        assert set(parts) == {0, 1}

    def test_kway_scalapart(self, graph_file, tmp_path):
        """k-way works for the flagship method too (needs no coords)."""
        path, g = graph_file
        out = tmp_path / "g.sp4"
        rc = main(["partition", path, "--method", "scalapart", "--parts", "4",
                   "--out", str(out), "--seed", "3"])
        assert rc == 0
        parts = np.array([int(x) for x in out.read_text().split()])
        assert len(np.unique(parts)) == 4

    def test_direct_kway_method(self, graph_file, tmp_path, capsys):
        """``--parts`` with a native k-way method splits directly."""
        path, g = graph_file
        out = tmp_path / "g.kg4"
        rc = main(["partition", path, "--method", "kway-geometric",
                   "--parts", "4", "--out", str(out), "--seed", "1"])
        assert rc == 0
        parts = np.array([int(x) for x in out.read_text().split()])
        assert parts.shape == (144,)
        assert len(np.unique(parts)) == 4
        assert "kway_cut=" in capsys.readouterr().err

    def test_direct_kway_on_sim_backend(self, graph_file, tmp_path):
        """k > 2 runs through the SPMD engine for native k-way methods."""
        path, g = graph_file
        out = tmp_path / "g.kg4sim"
        rc = main(["partition", path, "--method", "kway-geometric",
                   "--parts", "4", "--backend", "sim", "--nranks", "4",
                   "--out", str(out), "--seed", "1"])
        assert rc == 0
        parts = np.array([int(x) for x in out.read_text().split()])
        assert len(np.unique(parts)) == 4

    def test_kway_backend_needs_native_method(self, graph_file):
        """Bisection methods cannot produce k > 2 parts on sim/procs."""
        path, g = graph_file
        rc = main(["partition", path, "--method", "scalapart",
                   "--parts", "4", "--backend", "sim"])
        assert rc == 2

    def test_hierarchy(self, graph_file, tmp_path, capsys):
        path, g = graph_file
        out = tmp_path / "g.h"
        rc = main(["partition", path, "--method", "kway-geometric",
                   "--hierarchy", "2x2", "--out", str(out), "--seed", "4"])
        assert rc == 0
        parts = np.array([int(x) for x in out.read_text().split()])
        assert len(np.unique(parts)) == 4
        assert "hierarchy=2x2" in capsys.readouterr().err

    def test_hierarchy_rejects_nonseq_backend(self, graph_file):
        path, g = graph_file
        rc = main(["partition", path, "--method", "kway-geometric",
                   "--hierarchy", "2x2", "--backend", "sim"])
        assert rc == 2

    def test_bad_hierarchy_spec(self, graph_file):
        path, g = graph_file
        rc = main(["partition", path, "--method", "kway-geometric",
                   "--hierarchy", "2x4x2"])
        assert rc == 2

    def test_cost_model_flag(self, graph_file, tmp_path, capsys):
        path, g = graph_file
        out = tmp_path / "g.cm"
        rc = main(["partition", path, "--method", "parmetis", "--parts", "4",
                   "--cost-model", "degree", "--out", str(out),
                   "--seed", "2"])
        assert rc == 0
        parts = np.array([int(x) for x in out.read_text().split()])
        assert len(np.unique(parts)) == 4
        assert "cost_model=degree" in capsys.readouterr().err


class TestEmbed:
    def test_writes_coordinates(self, graph_file, tmp_path):
        path, g = graph_file
        out = tmp_path / "g.xy"
        rc = main(["embed", path, "--out", str(out), "--seed", "4"])
        assert rc == 0
        coords = np.loadtxt(out)
        assert coords.shape == (144, 2)
        assert np.isfinite(coords).all()


class TestTrace:
    def test_scalapart_trace_report(self, graph_file, capsys):
        path, g = graph_file
        rc = main(["trace", path, "--nranks", "4", "--seed", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "method=ScalaPart backend=sim nranks=4" in out
        assert "global collectives:" in out
        # per-phase rows with hierarchical labels (the 144-vertex grid
        # is below coarsest_size, so no coarsen/* phases appear)
        assert "embed/" in out
        assert "partition/select" in out

    def test_profile_jsonl_roundtrips(self, graph_file, tmp_path):
        from repro.parallel import read_trace_jsonl

        path, g = graph_file
        prof = tmp_path / "g.trace.jsonl"
        rc = main(["trace", path, "--nranks", "4", "--seed", "5",
                   "--block-size", "4", "--profile", str(prof)])
        assert rc == 0
        recs = read_trace_jsonl(str(prof))
        assert recs[0]["record"] == "run"
        assert recs[0]["nranks"] == 4
        assert recs[0]["comm"]["collective_ops"]
        phases = {r["phase"] for r in recs[1:]}
        assert any(p.startswith("embed/") for p in phases)

    def test_parmetis_method(self, graph_file, capsys):
        path, g = graph_file
        rc = main(["trace", path, "--method", "parmetis", "--nranks", "4"])
        assert rc == 0
        assert "nranks=4" in capsys.readouterr().out


class TestChaos:
    def _report(self, tmp_path, *extra):
        import json

        out = tmp_path / "report.json"
        rc = main(["chaos", "--n", "150", "--seed", "5", "--nranks", "4",
                   "--plans", "1", "--kill-op", "7", "--out", str(out),
                   *extra])
        return rc, json.loads(out.read_text())

    def test_records_backend_and_recovers(self, tmp_path):
        rc, report = self._report(tmp_path)
        assert rc == 0
        assert report["backend"] == "sim"
        assert report["checkpoint"] is None
        assert report["summary"]["failed"] == 0
        # --kill-op 7 lands in strip refinement on this mesh: the run
        # must come back recovered, not clean
        assert report["summary"]["recovered"] == 1

    def test_checkpoint_resume_surfaces_in_report(self, tmp_path):
        ckdir = tmp_path / "ck"
        rc, report = self._report(tmp_path, "--checkpoint", str(ckdir),
                                  "--backend", "sim")
        assert rc == 0
        assert report["checkpoint"] == str(ckdir)
        (run,) = report["runs"]
        assert run["status"] == "recovered"
        assert run["recovery"]["resumed_from"] == "embed"
        assert list(ckdir.glob("embed-*.npz"))

    def test_procs_backend_recorded(self, tmp_path):
        from repro.parallel import procs_available

        if not procs_available():
            pytest.skip("procs backend unavailable")
        rc, report = self._report(tmp_path, "--backend", "procs")
        assert rc == 0
        assert report["backend"] == "procs"
        assert report["summary"]["failed"] == 0
