"""Tests for the distributed multilevel fixed-lattice embedding."""

import numpy as np
import pytest

from repro.embed.parallel import dist_multilevel_embedding
from repro.graph.generators import grid2d, random_delaunay
from repro.parallel import QDR_CLUSTER, ZERO_COST, run_spmd


def run_embed(graph, p, machine=ZERO_COST, seed=1, **kw):
    def prog(comm):
        return (yield from dist_multilevel_embedding(comm, graph, seed=7, **kw))

    return run_spmd(prog, p, machine=machine, seed=seed)


class TestDistEmbedding:
    @pytest.mark.parametrize("p", [1, 2, 4, 16])
    def test_runs_and_is_finite(self, p):
        g = random_delaunay(600, seed=0).graph
        res = run_embed(g, p, smooth_iters=6)
        pos, info = res.values[0]
        assert pos.shape == (600, 2)
        assert np.isfinite(pos).all()
        assert info["levels"] >= 2

    def test_all_ranks_same_result(self):
        g = grid2d(20, 20).graph
        res = run_embed(g, 4, smooth_iters=4)
        pos0 = res.values[0][0]
        for pos, _ in res.values[1:]:
            assert pos is pos0  # shared reference

    def test_deterministic(self):
        g = random_delaunay(400, seed=1).graph
        a = run_embed(g, 4, smooth_iters=4).values[0][0]
        b = run_embed(g, 4, smooth_iters=4).values[0][0]
        assert np.allclose(a, b)

    def test_embedding_has_locality(self):
        """Edges should be short relative to the layout diameter —
        the property the geometric partitioner depends on."""
        g = random_delaunay(1200, seed=2).graph
        pos, _ = run_embed(g, 16, smooth_iters=10).values[0]
        edges, _w = g.edge_list()
        elen = np.linalg.norm(pos[edges[:, 0]] - pos[edges[:, 1]], axis=1).mean()
        diam = np.linalg.norm(pos.max(axis=0) - pos.min(axis=0))
        assert elen < diam / 5

    def test_phases_accounted(self):
        g = random_delaunay(500, seed=3).graph
        res = run_embed(g, 4, machine=QDR_CLUSTER, smooth_iters=4)
        assert res.phase_elapsed("coarsen") > 0
        assert res.phase_elapsed("embed") > 0

    def test_embed_comm_fraction_grows_with_p(self):
        """Figure 8: the communication share of embedding time grows
        with the processor count."""
        g = random_delaunay(1500, seed=4).graph
        fracs = []
        for p in (4, 64):
            res = run_embed(g, p, machine=QDR_CLUSTER, smooth_iters=6)
            fracs.append(res.phase("embed").comm_fraction)
        assert fracs[1] > fracs[0]

    def test_block_size_reduces_global_comm(self):
        """Larger stale-data blocks mean fewer gathers/reductions."""
        g = random_delaunay(800, seed=5).graph
        r1 = run_embed(g, 16, machine=QDR_CLUSTER, smooth_iters=8, block_size=1)
        r8 = run_embed(g, 16, machine=QDR_CLUSTER, smooth_iters=8, block_size=8)
        assert r8.collectives < r1.collectives
        assert r8.phase("embed").comm_elapsed < r1.phase("embed").comm_elapsed

    def test_more_ranks_not_slower_on_large_graph(self):
        """Simulated embedding time should drop substantially from
        P=1 to P=64 on a graph big enough to amortise latency."""
        g = random_delaunay(3000, seed=6).graph
        t1 = run_embed(g, 1, machine=QDR_CLUSTER, smooth_iters=8).elapsed
        t64 = run_embed(g, 64, machine=QDR_CLUSTER, smooth_iters=8).elapsed
        assert t64 < t1
