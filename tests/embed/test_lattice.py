"""Unit tests for the fixed-lattice repulsion approximation (Eq. 1-2)."""

import numpy as np
import pytest

from repro.embed.box import Box
from repro.embed.forces import repulsive_forces_exact
from repro.embed.lattice import (
    LatticeStats,
    beta_force_field,
    lattice_stats,
    repulsive_forces_lattice,
)
from repro.errors import EmbeddingError


class TestLatticeStats:
    def test_mass_conserved_and_com_weighted(self):
        pos = np.array([[0.1, 0.1], [0.3, 0.1], [0.9, 0.9]])
        masses = np.array([1.0, 3.0, 2.0])
        box = Box.unit()
        stats = lattice_stats(pos, masses, box, s=2)
        assert stats.mass.sum() == pytest.approx(6.0)
        # the two left points share cell (0, 0): weighted mean position
        np.testing.assert_allclose(stats.com[0], [0.25, 0.1])
        assert stats.mass[0] == pytest.approx(4.0)
        # top-right cell holds the third point
        assert stats.mass[3] == pytest.approx(2.0)
        np.testing.assert_allclose(stats.com[3], [0.9, 0.9])

    def test_empty_cells_have_zero_mass_and_com(self):
        pos = np.array([[0.1, 0.1]])
        stats = lattice_stats(pos, np.ones(1), Box.unit(), s=4)
        assert (stats.mass > 0).sum() == 1
        occupied = int(np.flatnonzero(stats.mass)[0])
        empty = stats.com[np.arange(16) != occupied]
        np.testing.assert_array_equal(empty, 0.0)

    def test_shape_validation(self):
        with pytest.raises(EmbeddingError, match="shapes"):
            LatticeStats(s=2, mass=np.zeros(3), com=np.zeros((4, 2)))


class TestBetaForceField:
    def test_two_cells_repel_symmetrically(self):
        stats = LatticeStats(
            s=2,
            mass=np.array([1.0, 1.0, 0.0, 0.0]),
            com=np.array([[0.25, 0.25], [0.75, 0.25], [0, 0], [0, 0]]),
        )
        field = beta_force_field(stats, c=1.0, k=1.0)
        # equal masses at mirrored positions: fields point apart, equal magnitude
        assert field[0][0] < 0 < field[1][0]
        np.testing.assert_allclose(field[0], -field[1])

    def test_empty_cells_exert_and_feel_nothing(self):
        stats = LatticeStats(
            s=2,
            mass=np.array([2.0, 0.0, 0.0, 0.0]),
            com=np.array([[0.2, 0.2], [0, 0], [0, 0], [0, 0]]),
        )
        field = beta_force_field(stats)
        np.testing.assert_array_equal(field[1:], 0.0)
        # a lone occupied cell feels no force either
        np.testing.assert_array_equal(field[0], 0.0)


class TestRepulsiveForcesLattice:
    def test_converges_to_exact_as_lattice_refines(self):
        # jittered grid: once the lattice is finer than the minimum
        # point separation every cell is a singleton and Eq. 1-2 reduce
        # to the exact all-pairs sum
        rng = np.random.default_rng(3)
        base = np.stack(
            np.meshgrid(np.arange(16), np.arange(16), indexing="ij"), axis=-1
        ).reshape(-1, 2) / 16.0
        pos = base + rng.uniform(-0.01, 0.01, size=base.shape)
        masses = rng.uniform(0.5, 2.0, size=256)
        exact = repulsive_forces_exact(pos, masses)
        scale = float(np.linalg.norm(exact))
        errs = [
            float(np.linalg.norm(repulsive_forces_lattice(pos, masses, s=s)
                                 - exact)) / scale
            for s in (2, 8, 32)
        ]
        assert errs[0] > errs[1] > errs[2]
        assert errs[2] < 1e-9

    def test_external_stats_reused(self):
        rng = np.random.default_rng(4)
        pos = rng.random((50, 2))
        box = Box.of_points(pos)
        stats = lattice_stats(pos, np.ones(50), box, s=8)
        a = repulsive_forces_lattice(pos, box=box, s=8, stats=stats)
        b = repulsive_forces_lattice(pos, box=box, s=8)
        np.testing.assert_allclose(a, b)

    def test_stale_stats_change_forces(self):
        rng = np.random.default_rng(5)
        pos = rng.random((50, 2))
        box = Box.unit()
        stale = lattice_stats(rng.random((50, 2)), np.ones(50), box, s=4)
        a = repulsive_forces_lattice(pos, box=box, s=4, stats=stale)
        b = repulsive_forces_lattice(pos, box=box, s=4)
        assert not np.allclose(a, b)

    def test_mismatched_stats_resolution_raises(self):
        pos = np.random.default_rng(0).random((10, 2))
        stats = lattice_stats(pos, np.ones(10), Box.unit(), s=4)
        with pytest.raises(EmbeddingError, match="s=4"):
            repulsive_forces_lattice(pos, box=Box.unit(), s=8, stats=stats)

    def test_single_cell_reduces_to_own_cell_term(self):
        # with s=1 every pair interacts only through the own-cell term;
        # two equal points repel along their separation axis
        pos = np.array([[0.25, 0.5], [0.75, 0.5]])
        out = repulsive_forces_lattice(pos, s=1, c=1.0)
        assert out[0][0] < 0 < out[1][0]
        np.testing.assert_allclose(out[0], -out[1])
