"""Million-vertex scale smoke (``-m slow``; excluded from tier-1).

Generates grid 1024×1024 (1,048,576 vertices) in-process, runs one
fixed-lattice smoothing level on it, and asserts the coordinates stay
finite — the end-to-end proof that the workspace-backed kernels and the
streaming loader actually operate at the scale this PR targets.  The
manual-dispatch ``bench-1m`` CI job runs it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.embed.box import Box
from repro.embed.fdl import force_directed_layout, random_positions
from repro.embed.lattice import LatticeWorkspace, repulsive_forces_lattice
from repro.graph.generators import grid2d
from repro.graph.io import read_metis, write_metis

pytestmark = pytest.mark.slow

N_SIDE = 1024  # 1024² = 1,048,576 vertices


def test_embed_one_level_at_1m():
    g = grid2d(N_SIDE, N_SIDE).graph
    assert g.num_vertices == N_SIDE * N_SIDE
    pos0 = random_positions(g.num_vertices, seed=3)
    box = Box.of_points(pos0).expanded(1.05)
    ws = LatticeWorkspace()

    def kernel(pos, masses, c, k):
        return repulsive_forces_lattice(pos, masses, c, k, box=box, s=64,
                                        workspace=ws)

    res = force_directed_layout(
        g, pos0, masses=g.vwgt, max_iters=3, step0=1.0, repulsion=kernel
    )
    assert res.pos.shape == (g.num_vertices, 2)
    assert np.isfinite(res.pos).all()
    assert not np.array_equal(res.pos, pos0)  # it actually moved


def test_streaming_reader_at_1m(tmp_path):
    g = grid2d(N_SIDE, N_SIDE).graph
    p = tmp_path / "grid-1m.graph"
    write_metis(g, p)
    g2 = read_metis(p)
    assert g2 == g
