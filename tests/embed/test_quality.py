"""Unit tests for the embedding-quality metrics."""

import numpy as np
import pytest

from repro.embed.quality import (
    EdgeLengthStats,
    crossing_proxy,
    edge_length_stats,
    neighborhood_preservation,
    normalized_stress,
)
from repro.errors import EmbeddingError
from repro.graph.generators import grid2d, path_graph


def _path(n):
    g = path_graph(n).graph
    pos = np.zeros((n, 2))
    pos[:, 0] = np.arange(n, dtype=float)
    return g, pos


class TestEdgeLengthStats:
    def test_uniform_path_has_zero_cv(self):
        g, pos = _path(10)
        stats = edge_length_stats(g, pos)
        assert stats.mean == pytest.approx(1.0)
        assert stats.std == pytest.approx(0.0)
        assert stats.cv == 0.0

    def test_nonuniform_lengths(self):
        g, pos = _path(3)
        pos[2, 0] = 4.0  # edges now 1 and 3
        stats = edge_length_stats(g, pos)
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx(1.0)
        assert stats.cv == pytest.approx(0.5)

    def test_zero_mean_guard(self):
        assert EdgeLengthStats(0.0, 0.0).cv == 0.0

    def test_edgeless_graph(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph.empty(4)
        stats = edge_length_stats(g, np.zeros((4, 2)))
        assert (stats.mean, stats.std) == (0.0, 0.0)

    def test_shape_mismatch_raises(self):
        g, _ = _path(5)
        with pytest.raises(EmbeddingError, match="pos"):
            edge_length_stats(g, np.zeros((4, 2)))


class TestNeighborhoodPreservation:
    def test_true_grid_layout_is_perfect(self):
        gg = grid2d(6, 6)
        g = gg.graph
        xs, ys = np.meshgrid(np.arange(6.0), np.arange(6.0), indexing="ij")
        pos = np.column_stack([xs.ravel(), ys.ravel()])
        score = neighborhood_preservation(g, pos, seed=0)
        assert score >= 0.9

    def test_random_layout_is_poor(self):
        gg = grid2d(8, 8)
        pos = np.random.default_rng(0).random((64, 2))
        score = neighborhood_preservation(gg.graph, pos, seed=0)
        assert score < 0.5

    def test_tiny_graph_trivially_perfect(self):
        g, pos = _path(2)
        assert neighborhood_preservation(g, pos) == 1.0


class TestNormalizedStress:
    def test_linear_path_embedding_has_no_stress(self):
        g, pos = _path(20)
        assert normalized_stress(g, pos, seed=1) == pytest.approx(0.0, abs=1e-12)

    def test_scale_invariant(self):
        gg = grid2d(5, 5)
        pos = np.random.default_rng(2).random((25, 2))
        a = normalized_stress(gg.graph, pos, seed=3)
        b = normalized_stress(gg.graph, 100.0 * pos, seed=3)
        assert a == pytest.approx(b)

    def test_folded_embedding_is_worse(self):
        g, pos = _path(20)
        folded = pos.copy()
        folded[:, 0] = np.abs(folded[:, 0] - 9.5)  # fold the line in half
        assert normalized_stress(g, folded, seed=1) > normalized_stress(
            g, pos, seed=1
        )


class TestCrossingProxy:
    def test_path_value(self):
        g, pos = _path(11)
        assert crossing_proxy(g, pos) == pytest.approx(1.0 / 10.0)

    def test_degenerate_layout(self):
        g, _ = _path(5)
        assert crossing_proxy(g, np.zeros((5, 2))) == 0.0
