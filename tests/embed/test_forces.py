"""Tests for force laws, Barnes–Hut and the fixed-lattice approximation."""

import numpy as np
import pytest

from repro.embed import (
    Box,
    attractive_forces,
    beta_force_field,
    lattice_stats,
    repulsive_forces_bh,
    repulsive_forces_exact,
    repulsive_forces_lattice,
    spring_energy,
)
from repro.errors import EmbeddingError
from repro.graph import CSRGraph
from repro.graph.generators import path_graph


class TestAttractive:
    def test_two_vertices_pull_together(self):
        g = path_graph(2).graph
        pos = np.array([[0.0, 0.0], [3.0, 0.0]])
        f = attractive_forces(g, pos, k=1.0)
        # |F| = d^2/K = 9, directed toward the neighbour
        assert np.allclose(f, [[9.0, 0.0], [-9.0, 0.0]])

    def test_k_scales_inverse(self):
        g = path_graph(2).graph
        pos = np.array([[0.0, 0.0], [2.0, 0.0]])
        assert np.allclose(
            attractive_forces(g, pos, k=2.0), attractive_forces(g, pos, k=1.0) / 2
        )

    def test_edge_weights_scale(self):
        g = CSRGraph.from_edges(2, np.array([[0, 1]]), np.array([5.0]))
        pos = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert np.allclose(attractive_forces(g, pos), [[5.0, 0.0], [-5.0, 0.0]])

    def test_isolated_vertices_zero(self):
        g = CSRGraph.empty(3)
        f = attractive_forces(g, np.random.default_rng(0).random((3, 2)))
        assert np.allclose(f, 0)

    def test_shape_validation(self):
        g = path_graph(3).graph
        with pytest.raises(EmbeddingError):
            attractive_forces(g, np.zeros((2, 2)))
        with pytest.raises(EmbeddingError):
            attractive_forces(g, np.zeros((3, 2)), k=0)


class TestRepulsiveExact:
    def test_two_points_push_apart(self):
        pos = np.array([[0.0, 0.0], [2.0, 0.0]])
        f = repulsive_forces_exact(pos, c=1.0, k=1.0)
        # |F| = CK^2/d = 0.5, away from the other point
        assert np.allclose(f, [[-0.5, 0.0], [0.5, 0.0]])

    def test_net_force_zero(self):
        rng = np.random.default_rng(1)
        pos = rng.random((50, 2))
        f = repulsive_forces_exact(pos)
        assert np.allclose(f.sum(axis=0), 0, atol=1e-9)

    def test_masses_scale(self):
        pos = np.array([[0.0, 0.0], [1.0, 0.0]])
        f1 = repulsive_forces_exact(pos, np.array([1.0, 1.0]), c=1.0)
        f2 = repulsive_forces_exact(pos, np.array([2.0, 3.0]), c=1.0)
        assert np.allclose(f2, 6 * f1)

    def test_empty(self):
        assert repulsive_forces_exact(np.zeros((0, 2))).shape == (0, 2)

    def test_coincident_points_finite(self):
        f = repulsive_forces_exact(np.zeros((3, 2)))
        assert np.isfinite(f).all()


class TestBarnesHut:
    def relative_error(self, n, seed, clustered=False):
        rng = np.random.default_rng(seed)
        pos = rng.random((n, 2)) * 10
        if clustered:
            pos[: n // 2] *= 0.1
        masses = rng.random(n) + 0.5
        exact = repulsive_forces_exact(pos, masses)
        approx = repulsive_forces_bh(pos, masses, leaf_target=2.0)
        num = np.linalg.norm(approx - exact, axis=1)
        den = np.linalg.norm(exact, axis=1) + 1e-12
        return num / den

    @pytest.mark.parametrize("n,seed", [(500, 0), (1200, 1)])
    def test_accuracy_uniform(self, n, seed):
        err = self.relative_error(n, seed)
        assert np.median(err) < 0.10
        assert err.mean() < 0.2

    def test_accuracy_clustered(self):
        err = self.relative_error(800, 2, clustered=True)
        assert np.median(err) < 0.15

    def test_small_input_exact(self):
        rng = np.random.default_rng(3)
        pos = rng.random((50, 2))
        assert np.allclose(
            repulsive_forces_bh(pos), repulsive_forces_exact(pos)
        )

    def test_momentum_nearly_conserved(self):
        rng = np.random.default_rng(4)
        pos = rng.random((600, 2))
        f = repulsive_forces_bh(pos)
        scale = np.abs(f).sum()
        assert np.abs(f.sum(axis=0)).max() < 0.05 * scale

    def test_bad_shape(self):
        with pytest.raises(EmbeddingError):
            repulsive_forces_bh(np.zeros((4, 3)))


class TestLattice:
    def test_stats_mass_conserved(self):
        rng = np.random.default_rng(5)
        pos = rng.random((300, 2))
        masses = rng.random(300) + 0.5
        st = lattice_stats(pos, masses, Box.of_points(pos), 8)
        assert st.mass.sum() == pytest.approx(masses.sum())

    def test_stats_com_weighted(self):
        pos = np.array([[0.1, 0.1], [0.3, 0.1]])
        masses = np.array([1.0, 3.0])
        st = lattice_stats(pos, masses, Box.unit(), 2)
        assert np.allclose(st.com[0], [0.25, 0.1])

    def test_field_zero_on_empty_cells(self):
        pos = np.array([[0.1, 0.1]])
        st = lattice_stats(pos, np.ones(1), Box.unit(), 4)
        field = beta_force_field(st)
        assert np.allclose(field[st.mass == 0], 0)

    def test_converges_to_exact_with_fine_lattice(self):
        rng = np.random.default_rng(6)
        pos = rng.random((400, 2)) * 5
        masses = np.ones(400)
        box = Box.of_points(pos)
        exact = repulsive_forces_exact(pos, masses)
        errs = []
        for s in (2, 8, 32):
            approx = repulsive_forces_lattice(pos, masses, box=box, s=s)
            errs.append(np.linalg.norm(approx - exact) / np.linalg.norm(exact))
        assert errs[2] < errs[0]
        assert errs[2] < 0.5  # coarse but directionally useful

    def test_external_stats_reused(self):
        rng = np.random.default_rng(7)
        pos = rng.random((100, 2))
        box = Box.unit()
        st = lattice_stats(pos, np.ones(100), box, 4)
        f1 = repulsive_forces_lattice(pos, box=box, s=4, stats=st)
        f2 = repulsive_forces_lattice(pos, box=box, s=4)
        assert np.allclose(f1, f2)

    def test_stats_side_mismatch(self):
        pos = np.zeros((2, 2))
        st = lattice_stats(pos, np.ones(2), Box.unit(), 4)
        with pytest.raises(EmbeddingError):
            repulsive_forces_lattice(pos, box=Box.unit(), s=8, stats=st)

    def test_single_cell_is_pure_com_repulsion(self):
        pos = np.array([[0.2, 0.5], [0.8, 0.5]])
        f = repulsive_forces_lattice(pos, box=Box.unit(), s=1, c=1.0, k=1.0)
        # each is repelled from the midpoint: left goes more left
        assert f[0, 0] < 0 < f[1, 0]


class TestEnergy:
    def test_energy_decreases_when_spring_relaxes(self):
        g = path_graph(2).graph
        stretched = spring_energy(g, np.array([[0.0, 0.0], [5.0, 0.0]]))
        relaxed = spring_energy(g, np.array([[0.0, 0.0], [1.0, 0.0]]))
        assert relaxed < stretched
