"""Unit tests for the Barnes-Hut (hierarchical grid) repulsion kernel."""

import numpy as np
import pytest

from repro.embed.forces import repulsive_forces_exact
from repro.embed.quadtree import repulsive_forces_bh
from repro.errors import EmbeddingError


class TestSmallInputs:
    def test_small_n_is_exact(self):
        rng = np.random.default_rng(1)
        pos = rng.random((60, 2))
        masses = rng.uniform(0.5, 2.0, size=60)
        np.testing.assert_allclose(
            repulsive_forces_bh(pos, masses),
            repulsive_forces_exact(pos, masses),
        )

    def test_invalid_shape_raises(self):
        with pytest.raises(EmbeddingError, match="pos"):
            repulsive_forces_bh(np.zeros((5, 3)))

    def test_empty_input(self):
        out = repulsive_forces_bh(np.zeros((0, 2)))
        assert out.shape == (0, 2)


class TestAccuracy:
    def test_close_to_exact_above_cutoff(self):
        rng = np.random.default_rng(2)
        pos = rng.random((800, 2))
        masses = rng.uniform(0.5, 2.0, size=800)
        exact = repulsive_forces_exact(pos, masses)
        approx = repulsive_forces_bh(pos, masses)
        rel = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
        assert rel < 0.05

    def test_accurate_across_leaf_targets(self):
        rng = np.random.default_rng(6)
        pos = rng.random((600, 2))
        exact = repulsive_forces_exact(pos, np.ones(600))
        for leaf_target in (1.0, 4.0, 16.0):
            approx = repulsive_forces_bh(pos, leaf_target=leaf_target)
            rel = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
            assert rel < 0.05, leaf_target


class TestPhysics:
    def test_forces_scale_with_mass_products(self):
        rng = np.random.default_rng(3)
        pos = rng.random((400, 2))
        base = repulsive_forces_bh(pos, np.ones(400))
        doubled = repulsive_forces_bh(pos, np.full(400, 2.0))
        np.testing.assert_allclose(doubled, 4.0 * base, rtol=1e-10)

    def test_net_force_near_zero(self):
        # repulsion is pairwise antisymmetric; the far field uses
        # point-vs-cell approximations, so cancellation is approximate
        rng = np.random.default_rng(4)
        pos = rng.random((500, 2))
        out = repulsive_forces_bh(pos, np.ones(500))
        scale = np.abs(out).sum()
        assert np.abs(out.sum(axis=0)).max() < 1e-3 * scale

    def test_two_clusters_repel(self):
        rng = np.random.default_rng(5)
        left = rng.normal(loc=(-2.0, 0.0), scale=0.1, size=(300, 2))
        right = rng.normal(loc=(2.0, 0.0), scale=0.1, size=(300, 2))
        out = repulsive_forces_bh(np.vstack([left, right]))
        assert out[:300, 0].mean() < 0 < out[300:, 0].mean()
