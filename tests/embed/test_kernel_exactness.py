"""Bit-exactness of the optimised embedding kernels.

Every hot-path kernel rewritten for the million-vertex push (workspace
reuse, bincount scatters, transposed field sums, precomputed BH
interaction offsets) must produce output *bit-identical* to the
implementation it replaced — the pre-refactor bodies are kept as
``_reference`` functions for exactly this comparison.  Each kernel is
checked on several graph families, including degenerate ones (star hub,
isolated vertices), and with a shared workspace reused across repeated
calls (stale-buffer bugs only show up on the second call).
"""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest

from repro.embed.box import Box
from repro.embed.fdl import (
    _force_directed_layout_reference,
    force_directed_layout,
)
from repro.embed.forces import (
    AttractiveWorkspace,
    _attractive_forces_reference,
    attractive_forces,
)
from repro.embed.lattice import (
    LatticeWorkspace,
    _beta_force_field_reference,
    _repulsive_forces_lattice_reference,
    beta_force_field,
    lattice_stats,
    repulsive_forces_lattice,
)
from repro.embed.multilevel import _lattice_kernel
from repro.embed.quadtree import (
    BHWorkspace,
    _repulsive_forces_bh_reference,
    repulsive_forces_bh,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid2d, random_delaunay, star_graph


def _with_isolated(g: CSRGraph, extra: int = 5) -> CSRGraph:
    """Append ``extra`` isolated vertices (empty adjacency rows)."""
    n = g.num_vertices + extra
    indptr = np.concatenate(
        [g.indptr, np.full(extra, g.indptr[-1], dtype=np.int64)]
    )
    vwgt = np.concatenate([g.vwgt, np.ones(extra)])
    return CSRGraph(indptr, g.indices, ewgt=g.ewgt, vwgt=vwgt)


def _graph_cases():
    return [
        ("grid", grid2d(23, 19).graph),
        ("delaunay", random_delaunay(700, seed=11).graph),
        ("star", star_graph(301).graph),
        ("isolated", _with_isolated(grid2d(12, 12).graph)),
    ]


GRAPHS = _graph_cases()


def _pos_masses(g, seed=0):
    rng = np.random.default_rng(seed)
    n = g.num_vertices
    pos = rng.random((n, 2)) * max(np.sqrt(n), 1.0)
    masses = 1.0 + rng.random(n)
    return pos, masses


@pytest.mark.parametrize("name,g", GRAPHS, ids=[n for n, _ in GRAPHS])
class TestAttractiveExactness:
    def test_matches_reference(self, name, g):
        pos, _ = _pos_masses(g)
        got = attractive_forces(g, pos, 1.3)
        ref = _attractive_forces_reference(g, pos, 1.3)
        assert np.array_equal(got, ref)

    def test_workspace_reuse_is_stable(self, name, g):
        ws = AttractiveWorkspace()
        for seed in range(3):
            pos, _ = _pos_masses(g, seed)
            got = attractive_forces(g, pos, 0.8, workspace=ws)
            ref = _attractive_forces_reference(g, pos, 0.8)
            assert np.array_equal(got, ref)


@pytest.mark.parametrize("name,g", GRAPHS, ids=[n for n, _ in GRAPHS])
@pytest.mark.parametrize("s", [3, 8, 17])
class TestLatticeExactness:
    def test_forces_match_reference(self, name, g, s):
        pos, masses = _pos_masses(g)
        box = Box.of_points(pos).expanded(1.05)
        ws = LatticeWorkspace()
        for seed in range(2):  # reuse the workspace across calls
            pos, masses = _pos_masses(g, seed)
            got = repulsive_forces_lattice(
                pos, masses, 0.2, 1.1, box=box, s=s, workspace=ws
            )
            ref = _repulsive_forces_lattice_reference(
                pos, masses, 0.2, 1.1, box=box, s=s
            )
            assert np.array_equal(got, ref)

    def test_field_matches_reference(self, name, g, s):
        pos, masses = _pos_masses(g)
        box = Box.of_points(pos).expanded(1.05)
        stats = lattice_stats(pos, masses, box, s)
        ws = LatticeWorkspace()
        got = beta_force_field(stats, 0.2, 1.1, workspace=ws)
        ref = _beta_force_field_reference(stats, 0.2, 1.1)
        assert np.array_equal(got, ref)


@pytest.mark.parametrize("name,g", GRAPHS, ids=[n for n, _ in GRAPHS])
class TestBarnesHutExactness:
    def test_matches_reference(self, name, g):
        ws = BHWorkspace()
        for seed in range(2):
            pos, masses = _pos_masses(g, seed)
            got = repulsive_forces_bh(pos, masses, 0.2, 1.1, workspace=ws)
            ref = _repulsive_forces_bh_reference(pos, masses, 0.2, 1.1)
            assert np.array_equal(got, ref)


@pytest.mark.parametrize("name,g", GRAPHS, ids=[n for n, _ in GRAPHS])
class TestLayoutLoopExactness:
    def test_lattice_smoothing_matches_reference(self, name, g):
        pos, masses = _pos_masses(g)
        box = Box.of_points(pos).expanded(1.05)
        kern = partial(_lattice_kernel, box=box, s=8, ws=LatticeWorkspace())
        got = force_directed_layout(
            g, pos, masses=masses, max_iters=6, step0=1.0, repulsion=kern
        )
        ref = _force_directed_layout_reference(
            g, pos, masses=masses, max_iters=6, step0=1.0, repulsion=kern
        )
        assert np.array_equal(got.pos, ref.pos)
        assert got.final_energy == ref.final_energy
        assert got.iterations == ref.iterations
        assert got.final_step == ref.final_step

    def test_auto_repulsion_matches_reference(self, name, g):
        pos, masses = _pos_masses(g, 4)
        got = force_directed_layout(g, pos, masses=masses, max_iters=4)
        ref = _force_directed_layout_reference(
            g, pos, masses=masses, max_iters=4
        )
        assert np.array_equal(got.pos, ref.pos)

    def test_fixed_vertices_match_reference(self, name, g):
        pos, masses = _pos_masses(g, 5)
        fixed = np.zeros(g.num_vertices, dtype=bool)
        fixed[:: max(1, g.num_vertices // 7)] = True
        got = force_directed_layout(
            g, pos, masses=masses, max_iters=4, fixed=fixed
        )
        ref = _force_directed_layout_reference(
            g, pos, masses=masses, max_iters=4, fixed=fixed
        )
        assert np.array_equal(got.pos, ref.pos)
