"""Tests for SSDE embedding and the embedding-quality metrics."""

import numpy as np
import pytest

from repro.embed import (
    bfs_hops,
    crossing_proxy,
    edge_length_stats,
    multilevel_embedding,
    neighborhood_preservation,
    normalized_stress,
    ssde_embedding,
)
from repro.errors import EmbeddingError
from repro.graph import CSRGraph
from repro.graph.generators import grid2d, path_graph, random_delaunay


class TestBFS:
    def test_path_distances(self):
        g = path_graph(6).graph
        assert bfs_hops(g, 0).tolist() == [0, 1, 2, 3, 4, 5]

    def test_disconnected_minus_one(self):
        g = CSRGraph.from_edges(4, np.array([[0, 1]]))
        d = bfs_hops(g, 0)
        assert d[1] == 1
        assert d[2] == d[3] == -1

    def test_source_bounds(self):
        g = path_graph(3).graph
        with pytest.raises(EmbeddingError):
            bfs_hops(g, 7)

    def test_grid_distance_is_manhattan(self):
        g, _ = grid2d(5, 5)
        d = bfs_hops(g, 0)  # corner
        assert d[24] == 8  # opposite corner: 4+4


class TestSSDE:
    def test_shapes_and_finiteness(self):
        g = random_delaunay(400, seed=0).graph
        pos = ssde_embedding(g, seed=1)
        assert pos.shape == (400, 2)
        assert np.isfinite(pos).all()

    def test_respects_graph_distance_on_path(self):
        g = path_graph(40).graph
        pos = ssde_embedding(g, landmarks=6, seed=2)
        # endpoints of the path should be far apart in the embedding
        span = np.linalg.norm(pos[0] - pos[39])
        mid = np.linalg.norm(pos[0] - pos[20])
        assert span > mid

    def test_better_than_random_stress(self):
        g = random_delaunay(500, seed=3).graph
        rng = np.random.default_rng(4)
        s_ssde = normalized_stress(g, ssde_embedding(g, seed=5), seed=6)
        s_rand = normalized_stress(g, rng.random((500, 2)), seed=6)
        assert s_ssde < s_rand

    def test_small_graphs(self):
        g = path_graph(3).graph
        assert ssde_embedding(g, seed=7).shape == (3, 2)
        assert ssde_embedding(CSRGraph.empty(0)).shape == (0, 2)

    def test_deterministic(self):
        g = grid2d(8, 8).graph
        a = ssde_embedding(g, seed=8)
        b = ssde_embedding(g, seed=8)
        assert np.allclose(a, b)


class TestQualityMetrics:
    def test_edge_length_stats_grid(self):
        g, pts = grid2d(6, 6)
        st = edge_length_stats(g, pts)
        assert st.mean == pytest.approx(1.0)
        assert st.cv == pytest.approx(0.0)

    def test_neighborhood_preservation_native_coords(self):
        g, pts = random_delaunay(400, seed=9)
        assert neighborhood_preservation(g, pts, seed=10) > 0.5

    def test_preservation_random_coords_low(self):
        g, _ = random_delaunay(400, seed=11)
        rnd = np.random.default_rng(12).random((400, 2))
        assert neighborhood_preservation(g, rnd, seed=13) < 0.2

    def test_stress_zero_for_exact_line(self):
        g = path_graph(20).graph
        pts = np.column_stack([np.arange(20.0), np.zeros(20)])
        assert normalized_stress(g, pts, seed=14) < 1e-9

    def test_crossing_proxy_bounds(self):
        g, pts = grid2d(10, 10)
        v = crossing_proxy(g, pts)
        assert 0 < v < 0.2

    def test_shape_validation(self):
        g = path_graph(4).graph
        with pytest.raises(EmbeddingError):
            edge_length_stats(g, np.zeros((3, 2)))

    def test_multilevel_embedding_scores_well(self):
        """The library's own embedding must respect graph locality —
        the property the whole pipeline depends on."""
        g = random_delaunay(600, seed=15).graph
        pos = multilevel_embedding(g, seed=16).pos
        assert neighborhood_preservation(g, pos, seed=17) > 0.35
        rnd = np.random.default_rng(18).random((600, 2))
        assert crossing_proxy(g, pos) < crossing_proxy(g, rnd)
