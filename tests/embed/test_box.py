"""Unit tests for bounding boxes and lattice-cell arithmetic."""

import numpy as np
import pytest

from repro.embed import Box, cell_ids, cell_indices
from repro.errors import EmbeddingError


class TestBox:
    def test_of_points(self):
        pts = np.array([[0.0, 1.0], [2.0, -1.0]])
        b = Box.of_points(pts)
        assert b.contains(pts).all()
        assert np.allclose(b.size, [2, 2], atol=1e-6)

    def test_of_points_empty(self):
        b = Box.of_points(np.zeros((0, 2)))
        assert np.allclose(b.size, [1, 1])

    def test_degenerate_rejected(self):
        with pytest.raises(EmbeddingError):
            Box(np.array([1.0, 0.0]), np.array([0.0, 1.0]))

    def test_scaled_about_origin(self):
        b = Box(np.array([1.0, 1.0]), np.array([2.0, 3.0])).scaled(2.0)
        assert np.allclose(b.lo, [2, 2])
        assert np.allclose(b.hi, [4, 6])

    def test_expanded_keeps_center(self):
        b = Box(np.zeros(2), np.ones(2))
        e = b.expanded(2.0)
        assert np.allclose(e.center, b.center)
        assert np.allclose(e.size, 2 * b.size)

    def test_clip(self):
        b = Box.unit()
        out = b.clip(np.array([[2.0, -1.0]]))
        assert out.tolist() == [[1.0, 0.0]]

    def test_cell_box_tiles_box(self):
        b = Box(np.zeros(2), np.array([4.0, 2.0]))
        c = b.cell_box(1, 0, 2)
        assert np.allclose(c.lo, [0.0, 1.0])
        assert np.allclose(c.hi, [2.0, 2.0])
        with pytest.raises(EmbeddingError):
            b.cell_box(2, 0, 2)


class TestCells:
    def test_cell_indices_basic(self):
        b = Box.unit()
        pts = np.array([[0.1, 0.1], [0.9, 0.1], [0.1, 0.9]])
        row, col = cell_indices(pts, b, 2)
        assert row.tolist() == [0, 0, 1]
        assert col.tolist() == [0, 1, 0]

    def test_points_outside_clamped(self):
        b = Box.unit()
        row, col = cell_indices(np.array([[5.0, -3.0]]), b, 4)
        assert (row[0], col[0]) == (0, 3)

    def test_cell_ids_row_major(self):
        b = Box.unit()
        cid = cell_ids(np.array([[0.9, 0.9]]), b, 4)
        assert cid[0] == 15

    def test_invalid_lattice_side(self):
        with pytest.raises(EmbeddingError):
            cell_ids(np.zeros((1, 2)), Box.unit(), 0)

    def test_every_point_maps_to_its_cell_box(self):
        rng = np.random.default_rng(0)
        pts = rng.random((200, 2)) * 3 - 1
        b = Box.of_points(pts)
        s = 5
        row, col = cell_indices(pts, b, s)
        for t in range(0, 200, 37):
            cb = b.cell_box(int(row[t]), int(col[t]), s)
            assert cb.contains(pts[t : t + 1])[0]
