"""Tests for the adaptive layout driver and the multilevel embedding."""

import numpy as np
import pytest

from repro.embed import (
    force_directed_layout,
    hu_layout,
    lattice_side_for,
    multilevel_embedding,
    random_positions,
    spring_energy,
)
from repro.errors import EmbeddingError
from repro.graph import CSRGraph
from repro.graph.generators import cycle_graph, grid2d, path_graph, random_delaunay


def edge_length_stats(graph, pos):
    edges, _ = graph.edge_list()
    d = np.linalg.norm(pos[edges[:, 0]] - pos[edges[:, 1]], axis=1)
    return d.mean(), d.std()


class TestFDL:
    def test_converges_on_small_cycle(self):
        g = cycle_graph(12).graph
        res = force_directed_layout(
            g, random_positions(12, seed=0), max_iters=400, repulsion="exact"
        )
        assert res.converged
        assert res.iterations <= 400

    def test_reduces_energy(self):
        g = grid2d(6, 6).graph
        p0 = random_positions(36, seed=1)
        res = force_directed_layout(g, p0, max_iters=200, repulsion="exact")
        assert spring_energy(g, res.pos) < spring_energy(g, p0)

    def test_uniformises_edge_lengths_on_grid(self):
        g = grid2d(7, 7).graph
        res = force_directed_layout(
            g, random_positions(49, seed=2), max_iters=500, repulsion="exact"
        )
        mean, std = edge_length_stats(g, res.pos)
        assert std / mean < 0.5  # near-uniform springs

    def test_fixed_vertices_do_not_move(self):
        g = path_graph(5).graph
        p0 = random_positions(5, seed=3)
        fixed = np.array([True, False, False, False, True])
        res = force_directed_layout(g, p0, fixed=fixed, max_iters=50)
        assert np.allclose(res.pos[fixed], p0[fixed])
        assert not np.allclose(res.pos[~fixed], p0[~fixed])

    def test_all_fixed_noop(self):
        g = path_graph(3).graph
        p0 = random_positions(3, seed=4)
        res = force_directed_layout(g, p0, fixed=np.ones(3, dtype=bool))
        assert res.iterations == 0
        assert np.allclose(res.pos, p0)

    def test_input_not_mutated(self):
        g = path_graph(4).graph
        p0 = random_positions(4, seed=5)
        keep = p0.copy()
        force_directed_layout(g, p0, max_iters=10)
        assert np.array_equal(p0, keep)

    def test_zero_iters(self):
        g = path_graph(3).graph
        p0 = random_positions(3, seed=6)
        res = force_directed_layout(g, p0, max_iters=0)
        assert np.allclose(res.pos, p0)
        assert not res.converged

    def test_validation(self):
        g = path_graph(3).graph
        with pytest.raises(EmbeddingError):
            force_directed_layout(g, np.zeros((2, 2)))
        with pytest.raises(EmbeddingError):
            force_directed_layout(g, np.zeros((3, 2)), repulsion="magic")
        with pytest.raises(EmbeddingError):
            force_directed_layout(g, np.zeros((3, 2)), fixed=np.ones(2, dtype=bool))

    def test_custom_repulsion_callable(self):
        g = path_graph(4).graph
        calls = []

        def rep(pos, m, c, k):
            calls.append(1)
            return np.zeros_like(pos)

        force_directed_layout(g, random_positions(4, seed=7), repulsion=rep, max_iters=3)
        assert len(calls) == 3


class TestLatticeSide:
    def test_monotone_in_n(self):
        assert lattice_side_for(100) <= lattice_side_for(10000)

    def test_bounds(self):
        assert lattice_side_for(0) == 1
        assert lattice_side_for(10) >= 2
        assert lattice_side_for(10**9) == 64


class TestMultilevel:
    def test_embedding_shape_and_finiteness(self):
        g = random_delaunay(800, seed=8).graph
        res = multilevel_embedding(g, seed=1)
        assert res.pos.shape == (800, 2)
        assert np.isfinite(res.pos).all()
        assert res.num_levels >= 2

    def test_embedding_separates_mesh(self):
        # a good mesh embedding has near-uniform edge lengths
        g = grid2d(16, 16).graph
        res = multilevel_embedding(g, seed=2, smooth_iters=30)
        mean, std = edge_length_stats(g, res.pos)
        assert std / mean < 0.8

    def test_deterministic(self):
        g = random_delaunay(300, seed=9).graph
        a = multilevel_embedding(g, seed=3).pos
        b = multilevel_embedding(g, seed=3).pos
        assert np.allclose(a, b)

    def test_bh_variant(self):
        g = random_delaunay(400, seed=10).graph
        res = multilevel_embedding(g, seed=4, repulsion="bh", smooth_iters=5)
        assert np.isfinite(res.pos).all()

    def test_invalid_repulsion(self):
        g = grid2d(4, 4).graph
        with pytest.raises(EmbeddingError):
            multilevel_embedding(g, repulsion="exact2")

    def test_empty_graph(self):
        g = CSRGraph.empty(0)
        res = multilevel_embedding(g)
        assert res.pos.shape == (0, 2)

    def test_hu_layout_wrapper(self):
        g = grid2d(10, 10).graph
        pos = hu_layout(g, seed=5, smooth_iters=8)
        assert pos.shape == (100, 2)
        assert np.isfinite(pos).all()

    def test_embedding_preserves_locality(self):
        """Neighbouring grid vertices should land near each other:
        mean edge length must be well below the layout diameter."""
        g = grid2d(12, 12).graph
        res = multilevel_embedding(g, seed=6, smooth_iters=25)
        mean, _ = edge_length_stats(g, res.pos)
        diam = np.linalg.norm(res.pos.max(axis=0) - res.pos.min(axis=0))
        assert mean < diam / 4
